(* Buffer packing (§5).

   Decides how the values in a ReqComm set are arranged in the stream
   buffer between two filters and performs the actual byte-level
   serialization.

   For the fields of a collection's elements the paper gives two layouts:
   - instance-wise: <count, t1.x, t1.y, ..., tcount.x, tcount.y>
   - field-wise:    <count, t1.x .. tcount.x, t1.y .. tcount.y>

   Fields first consumed by the receiving filter are grouped together and
   packed instance-wise; fields first consumed by a later filter are
   packed field-wise (one contiguous column per group), sorted by the
   order in which they are first read.  A contiguous column that the
   receiving filter only forwards can be copied to the output buffer
   wholesale, which is where the field-wise layout wins. *)

open Lang
module V = Value

type scalar_ty = Sint | Sfloat | Sbool | Sstring | Srange

let scalar_ty_of_ast (ty : Ast.ty) =
  match ty with
  | Ast.Tint -> Some Sint
  | Ast.Tfloat -> Some Sfloat
  | Ast.Tbool -> Some Sbool
  | Ast.Tstring -> Some Sstring
  | Ast.Trectdomain -> Some Srange
  | _ -> None

let scalar_size = function
  | Sint -> 8
  | Sfloat -> 8
  | Sbool -> 1
  | Srange -> 16
  | Sstring -> -1 (* variable *)

type field_spec = { fs_name : string; fs_ty : scalar_ty }

(* A group of element fields packed together.  [Instance] interleaves the
   group's fields per element; [Fieldwise] stores one contiguous column
   per field. *)
type group = {
  g_layout : [ `Instance | `Fieldwise ];
  g_fields : field_spec list;
  g_first_consumer : int option; (* filter index that first reads them *)
}

type entry =
  | Escalar of string * scalar_ty             (* top-level variable *)
  | Eobj_field of string * string * string * scalar_ty
      (* object var, its class, field name, field type *)
  | Eobj_any of string * string * string * Ast.ty
      (* object var, its class, structured field (array/list/object
         typed), serialized generically *)
  | Earray of string * Section.t * scalar_ty  (* array (or section) *)
  | Ecoll of string * string option * group list
      (* collection var, element class (None = primitive elements),
         ordered field groups *)

type layout = entry list

(* ------------------------------------------------------------------ *)
(* Layout construction                                                  *)
(* ------------------------------------------------------------------ *)

(* Layout policy: [`Auto] is the paper's rule (§5); the other two force a
   single scheme everywhere and exist for the packing ablation. *)
type mode = [ `Auto | `All_instance | `All_fieldwise ]

(* Build the layout for the boundary entering segment [cut], given the
   decomposition via [filter_of_seg] (which filter index each segment
   belongs to).  [rc] supplies the ReqComm set and first-consumer
   queries. *)
let layout_for_cut ?(mode : mode = `Auto) (prog : Ast.program)
    (tyenv : Tyenv.t) (rc : Reqcomm.t) ~(cut : int)
    ~(filter_of_seg : int -> int) : layout =
  let items = Varset.items (Reqcomm.reqcomm_into rc cut) in
  let receiving_filter = filter_of_seg cut in
  (* group items by base variable *)
  let scalars = ref [] in
  let obj_fields = Hashtbl.create 8 in
  let colls = Hashtbl.create 8 in
  let arrays = ref [] in
  List.iter
    (fun item ->
      match item with
      | Varset.Var v -> (
          match Tyenv.find tyenv v with
          | Some ty -> (
              match scalar_ty_of_ast ty with
              | Some st -> scalars := (v, st) :: !scalars
              | None -> () (* object/coll vars appear as field items *))
          | None -> scalars := (v, Sint) :: !scalars)
      | Varset.Coll c -> if not (Hashtbl.mem colls c) then Hashtbl.replace colls c []
      | Varset.ElemField (c, f) -> (
          match Tyenv.find tyenv c with
          | Some (Ast.Tlist _) ->
              let cur = try Hashtbl.find colls c with Not_found -> [] in
              Hashtbl.replace colls c (f :: cur)
          | Some (Ast.Tclass cls) ->
              let cur = try Hashtbl.find obj_fields (c, cls) with Not_found -> [] in
              Hashtbl.replace obj_fields (c, cls) (f :: cur)
          | _ -> ())
      | Varset.Arr (a, s) -> (
          match Tyenv.find tyenv a with
          | Some (Ast.Tarray elt) -> (
              match scalar_ty_of_ast elt with
              | Some st -> arrays := (a, s, st) :: !arrays
              | None -> ())
          | _ -> ()))
    items;
  let scalar_entries =
    List.sort compare !scalars |> List.map (fun (v, st) -> Escalar (v, st))
  in
  let obj_entries =
    Hashtbl.fold
      (fun (v, cls) fields acc ->
        List.fold_left
          (fun acc f ->
            match Tyenv.field_ty prog cls f with
            | Some fty -> (
                match scalar_ty_of_ast fty with
                | Some st -> Eobj_field (v, cls, f, st) :: acc
                | None -> Eobj_any (v, cls, f, fty) :: acc)
            | None -> acc)
          acc (List.sort_uniq compare fields))
      obj_fields []
    |> List.sort compare
  in
  let array_entries =
    List.sort compare !arrays |> List.map (fun (a, s, st) -> Earray (a, s, st))
  in
  let coll_entries =
    Hashtbl.fold
      (fun c fields acc ->
        let elem_class, field_ty_of =
          match Tyenv.find tyenv c with
          | Some (Ast.Tlist (Ast.Tclass cls)) ->
              (Some cls, fun f -> Tyenv.field_ty prog cls f)
          | Some (Ast.Tlist elt) -> (None, fun _ -> Some elt)
          | _ -> (None, fun _ -> None)
        in
        let fields =
          match (elem_class, fields) with
          | None, [] -> [ Gencons.prim_field ] (* primitive collection *)
          | _ -> List.sort_uniq compare fields
        in
        let specs =
          List.filter_map
            (fun f ->
              match field_ty_of f with
              | Some ty -> (
                  match scalar_ty_of_ast ty with
                  | Some st -> Some ({ fs_name = f; fs_ty = st }, f)
                  | None -> None)
              | None ->
                  if f = Gencons.prim_field then
                    Some ({ fs_name = f; fs_ty = Sfloat }, f)
                  else None)
            fields
        in
        (* first consumer (as a filter index) of each field *)
        let consumer_of f =
          match Reqcomm.first_consumer rc cut (Varset.ElemField (c, f)) with
          | Some seg -> Some (filter_of_seg seg)
          | None -> None
        in
        let with_consumer =
          List.map (fun (spec, f) -> (spec, consumer_of f)) specs
        in
        (* partition into groups by first-consuming filter *)
        let module IM = Map.Make (struct
          type t = int option

          let compare a b =
            match (a, b) with
            | None, None -> 0
            | None, Some _ -> 1 (* never-consumed last *)
            | Some _, None -> -1
            | Some x, Some y -> compare x y
        end) in
        let grouped =
          List.fold_left
            (fun m (spec, cons) ->
              IM.update cons
                (function None -> Some [ spec ] | Some l -> Some (spec :: l))
                m)
            IM.empty with_consumer
        in
        let groups =
          match mode with
          | `Auto ->
              IM.bindings grouped
              |> List.map (fun (cons, specs) ->
                     {
                       g_layout =
                         (if cons = Some receiving_filter then `Instance
                          else `Fieldwise);
                       g_fields = List.sort compare specs;
                       g_first_consumer = cons;
                     })
          | `All_instance ->
              (* every field interleaved in one group *)
              [
                {
                  g_layout = `Instance;
                  g_fields = List.sort compare (List.map fst specs);
                  g_first_consumer = None;
                };
              ]
          | `All_fieldwise ->
              (* one contiguous column per field *)
              List.map
                (fun (spec, _) ->
                  {
                    g_layout = `Fieldwise;
                    g_fields = [ spec ];
                    g_first_consumer = None;
                  })
                specs
        in
        let groups = List.filter (fun g -> g.g_fields <> []) groups in
        Ecoll (c, elem_class, groups) :: acc)
      colls []
    |> List.sort compare
  in
  scalar_entries @ obj_entries @ array_entries @ coll_entries

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

(* The byte codec itself lives in the leaf [Wirefmt] library so the
   runtime's wire protocol (Datacutter.Wire) can frame payloads with the
   exact same encoding without a core↔datacutter dependency cycle. *)
let buf_add_int = Wirefmt.buf_add_int
let buf_add_float = Wirefmt.buf_add_float
let buf_add_bool = Wirefmt.buf_add_bool
let buf_add_string = Wirefmt.buf_add_string

let add_scalar buf st (v : V.t) =
  match st with
  | Sint -> buf_add_int buf (V.as_int v)
  | Sfloat -> buf_add_float buf (V.as_float v)
  | Sbool -> buf_add_bool buf (V.as_bool v)
  | Sstring -> buf_add_string buf (V.as_string v)
  | Srange -> (
      match v with
      | V.Vrange (lo, hi) ->
          buf_add_int buf lo;
          buf_add_int buf hi
      | _ -> V.runtime_errorf "expected Rectdomain, got %s" (V.type_name v))

type reader = Wirefmt.reader = {
  data : Bytes.t;
  mutable pos : int;
  limit : int;
}

let reader_of = Wirefmt.reader_of

let read_int = Wirefmt.read_int
let read_float = Wirefmt.read_float
let read_bool = Wirefmt.read_bool
let read_string = Wirefmt.read_string

let read_scalar r st =
  match st with
  | Sint -> V.Vint (read_int r)
  | Sfloat -> V.Vfloat (read_float r)
  | Sbool -> V.Vbool (read_bool r)
  | Sstring -> V.Vstring (read_string r)
  | Srange ->
      let lo = read_int r in
      let hi = read_int r in
      V.Vrange (lo, hi)

(* --- generic structured-value serialization --------------------------- *)

(* Serialize any PipeLang value by its declared type: scalars directly,
   arrays and lists length-prefixed, objects field-by-field in declaration
   order with a presence byte (null support).  Used for object fields of
   structured type and for reduction-state payloads ([Objpack]). *)
let rec pack_value_generic buf prog (ty : Ast.ty) (v : V.t) =
  match ty with
  | Ast.Tint -> buf_add_int buf (V.as_int v)
  | Ast.Tfloat -> buf_add_float buf (V.as_float v)
  | Ast.Tbool -> buf_add_bool buf (V.as_bool v)
  | Ast.Tstring -> buf_add_string buf (V.as_string v)
  | Ast.Tvoid -> ()
  | Ast.Trectdomain -> (
      match v with
      | V.Vrange (lo, hi) ->
          buf_add_int buf lo;
          buf_add_int buf hi
      | _ -> V.runtime_errorf "pack: expected Rectdomain")
  | Ast.Tarray elt -> (
      match v with
      | V.Vnull -> buf_add_int buf (-1)
      | V.Varray a ->
          buf_add_int buf (Array.length a);
          Array.iter (fun x -> pack_value_generic buf prog elt x) a
      | _ -> V.runtime_errorf "pack: expected array, got %s" (V.type_name v))
  | Ast.Tlist elt ->
      let l = V.as_list v in
      buf_add_int buf (V.Vec.length l);
      V.Vec.iter (fun x -> pack_value_generic buf prog elt x) l
  | Ast.Tclass cls -> (
      match v with
      | V.Vnull -> buf_add_bool buf false
      | V.Vobject obj -> (
          buf_add_bool buf true;
          match Ast.find_class prog cls with
          | None -> V.runtime_errorf "pack: unknown class %s" cls
          | Some cd ->
              List.iter
                (fun (fty, fname) ->
                  pack_value_generic buf prog fty (V.field obj fname))
                cd.Ast.cd_fields)
      | _ -> V.runtime_errorf "pack: expected %s object" cls)

let rec unpack_value_generic (r : reader) prog (ty : Ast.ty) : V.t =
  match ty with
  | Ast.Tint -> V.Vint (read_int r)
  | Ast.Tfloat -> V.Vfloat (read_float r)
  | Ast.Tbool -> V.Vbool (read_bool r)
  | Ast.Tstring -> V.Vstring (read_string r)
  | Ast.Tvoid -> V.Vunit
  | Ast.Trectdomain ->
      let lo = read_int r in
      let hi = read_int r in
      V.Vrange (lo, hi)
  | Ast.Tarray elt ->
      let n = read_int r in
      if n < 0 then V.Vnull
      else V.Varray (Array.init n (fun _ -> unpack_value_generic r prog elt))
  | Ast.Tlist elt ->
      let n = read_int r in
      let vec = V.Vec.create () in
      for _ = 1 to n do
        V.Vec.push vec (unpack_value_generic r prog elt)
      done;
      V.Vlist vec
  | Ast.Tclass cls -> (
      if not (read_bool r) then V.Vnull
      else
        match Ast.find_class prog cls with
        | None -> V.runtime_errorf "unpack: unknown class %s" cls
        | Some cd ->
            let obj = V.make_object cd in
            List.iter
              (fun (fty, fname) ->
                V.set_field obj fname (unpack_value_generic r prog fty))
              cd.Ast.cd_fields;
            V.Vobject obj)

let rec value_size_generic prog (ty : Ast.ty) (v : V.t) =
  match ty with
  | Ast.Tint | Ast.Tfloat -> 8
  | Ast.Tbool -> 1
  | Ast.Tstring -> 8 + String.length (V.as_string v)
  | Ast.Tvoid -> 0
  | Ast.Trectdomain -> 16
  | Ast.Tarray elt -> (
      match v with
      | V.Vnull -> 8
      | V.Varray a ->
          8 + Array.fold_left (fun s x -> s + value_size_generic prog elt x) 0 a
      | _ -> 8)
  | Ast.Tlist elt ->
      let l = V.as_list v in
      let s = ref 8 in
      V.Vec.iter (fun x -> s := !s + value_size_generic prog elt x) l;
      !s
  | Ast.Tclass cls -> (
      match v with
      | V.Vobject obj -> (
          match Ast.find_class prog cls with
          | None -> 1
          | Some cd ->
              1
              + List.fold_left
                  (fun s (fty, fname) ->
                    s + value_size_generic prog fty (V.field obj fname))
                  0 cd.Ast.cd_fields)
      | _ -> 1)

(* Wrap an environment lookup so the "runtime:<name>" symbols produced
   by the analysis for [runtime_define] bounds resolve against the
   run-time definition table. *)
let runtime_aware_lookup ~(runtime_def : string -> int option)
    ~(lookup : string -> V.t) name =
  let prefix = "runtime:" in
  let plen = String.length prefix in
  if String.length name > plen && String.sub name 0 plen = prefix then
    let key = String.sub name plen (String.length name - plen) in
    match runtime_def key with
    | Some v -> V.Vint v
    | None -> V.runtime_errorf "runtime_define %s is not set" key
  else lookup name

(* Resolve a section against the runtime environment (symbolic bounds are
   looked up as integer variables). *)
let resolve_section lookup (arr : V.t array) (s : Section.t) =
  let resolve_bound = function
    | Section.Bconst n -> n
    | Section.Bsym v -> V.as_int (lookup v)
    | Section.Bsym_off (v, k) -> V.as_int (lookup v) + k
  in
  match s with
  | Section.Whole -> (0, Array.length arr)
  | Section.Range (lo, hi) ->
      let lo = max 0 (resolve_bound lo) in
      let hi = min (Array.length arr) (resolve_bound hi) in
      (lo, max lo hi)

(* Pack the values described by [layout] from [lookup] into bytes. *)
let pack (prog : Ast.program) (layout : layout) ~(lookup : string -> V.t) :
    Bytes.t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun entry ->
      match entry with
      | Escalar (v, st) -> add_scalar buf st (lookup v)
      | Eobj_field (v, _, f, st) ->
          let obj = V.as_object (lookup v) in
          add_scalar buf st (V.field obj f)
      | Eobj_any (v, _, f, ty) ->
          let obj = V.as_object (lookup v) in
          pack_value_generic buf prog ty (V.field obj f)
      | Earray (a, s, st) ->
          let arr = V.as_array (lookup a) in
          let lo, hi = resolve_section lookup arr s in
          buf_add_int buf lo;
          buf_add_int buf (hi - lo);
          for i = lo to hi - 1 do
            add_scalar buf st arr.(i)
          done
      | Ecoll (c, elem_class, groups) ->
          let l = V.as_list (lookup c) in
          let n = V.Vec.length l in
          buf_add_int buf n;
          let field_of elt (fs : field_spec) =
            if fs.fs_name = Gencons.prim_field then elt
            else V.field (V.as_object elt) fs.fs_name
          in
          ignore elem_class;
          List.iter
            (fun g ->
              match g.g_layout with
              | `Instance ->
                  for i = 0 to n - 1 do
                    let elt = V.Vec.get l i in
                    List.iter
                      (fun fs -> add_scalar buf fs.fs_ty (field_of elt fs))
                      g.g_fields
                  done
              | `Fieldwise ->
                  List.iter
                    (fun fs ->
                      for i = 0 to n - 1 do
                        add_scalar buf fs.fs_ty (field_of (V.Vec.get l i) fs)
                      done)
                    g.g_fields)
            groups)
    layout;
  Buffer.to_bytes buf

(* Find or create the object value for variable [v] while unpacking;
   objects are rebuilt from their class declaration so every field exists
   (non-communicated ones keep their zero values) and methods resolve. *)
let obj_slot out add v cls prog =
  match List.assoc_opt v !out with
  | Some (V.Vobject o) -> o
  | _ ->
      let o =
        match Ast.find_class prog cls with
        | Some cd -> V.make_object cd
        | None -> { V.ocls = cls; V.ofields = Hashtbl.create 4 }
      in
      add v (V.Vobject o);
      o

(* Unpack a buffer produced by [pack] with the same layout.  Collection
   elements are rebuilt as objects of the element class with only the
   packed fields meaningful (others take their zero values); arrays are
   rebuilt at [lo + length] size. *)
let unpack (prog : Ast.program) (layout : layout) (data : Bytes.t) :
    (string * V.t) list =
  let r = reader_of data in
  let out = ref [] in
  let add name v = out := (name, v) :: !out in
  List.iter
    (fun entry ->
      match entry with
      | Escalar (v, st) -> add v (read_scalar r st)
      | Eobj_field (v, cls, f, st) ->
          let value = read_scalar r st in
          V.set_field (obj_slot out add v cls prog) f value
      | Eobj_any (v, cls, f, ty) ->
          let value = unpack_value_generic r prog ty in
          V.set_field (obj_slot out add v cls prog) f value
      | Earray (a, s, st) ->
          ignore s;
          let lo = read_int r in
          let len = read_int r in
          let arr =
            Array.make (lo + len)
              (match st with
              | Sint -> V.Vint 0
              | Sfloat -> V.Vfloat 0.0
              | Sbool -> V.Vbool false
              | Sstring -> V.Vstring ""
              | Srange -> V.Vrange (0, 0))
          in
          for i = lo to lo + len - 1 do
            arr.(i) <- read_scalar r st
          done;
          add a (V.Varray arr)
      | Ecoll (c, elem_class, groups) ->
          let n = read_int r in
          let make_elt () =
            match elem_class with
            | Some cls -> (
                match Ast.find_class prog cls with
                | Some cd -> V.Vobject (V.make_object cd)
                | None ->
                    V.Vobject { V.ocls = cls; V.ofields = Hashtbl.create 4 })
            | None -> V.Vfloat 0.0
          in
          let elems = Array.init n (fun _ -> make_elt ()) in
          let set_field i (fs : field_spec) value =
            if fs.fs_name = Gencons.prim_field then elems.(i) <- value
            else
              match elems.(i) with
              | V.Vobject o -> V.set_field o fs.fs_name value
              | _ -> elems.(i) <- value
          in
          List.iter
            (fun g ->
              match g.g_layout with
              | `Instance ->
                  for i = 0 to n - 1 do
                    List.iter
                      (fun fs -> set_field i fs (read_scalar r fs.fs_ty))
                      g.g_fields
                  done
              | `Fieldwise ->
                  List.iter
                    (fun fs ->
                      for i = 0 to n - 1 do
                        set_field i fs (read_scalar r fs.fs_ty)
                      done)
                    g.g_fields)
            groups;
          let vec = V.Vec.create () in
          Array.iter (fun e -> V.Vec.push vec e) elems;
          add c (V.Vlist vec))
    layout;
  List.rev !out

(* Size in bytes of the buffer [pack] would produce, without building it.
   Used by the profiler to measure per-boundary volumes. *)
let packed_size (prog : Ast.program) (layout : layout)
    ~(lookup : string -> V.t) : int =
  let total = ref 0 in
  let scalar_bytes st v =
    match st with
    | Sstring -> 8 + String.length (V.as_string v)
    | st -> scalar_size st
  in
  List.iter
    (fun entry ->
      match entry with
      | Escalar (v, st) -> total := !total + scalar_bytes st (lookup v)
      | Eobj_field (v, _, f, st) ->
          let obj = V.as_object (lookup v) in
          total := !total + scalar_bytes st (V.field obj f)
      | Eobj_any (v, _, f, ty) ->
          let obj = V.as_object (lookup v) in
          total := !total + value_size_generic prog ty (V.field obj f)
      | Earray (a, s, st) ->
          let arr = V.as_array (lookup a) in
          let lo, hi = resolve_section lookup arr s in
          total := !total + 16;
          if st = Sstring then
            for i = lo to hi - 1 do
              total := !total + scalar_bytes st arr.(i)
            done
          else total := !total + ((hi - lo) * scalar_size st)
      | Ecoll (c, _, groups) ->
          let l = V.as_list (lookup c) in
          let n = V.Vec.length l in
          total := !total + 8;
          List.iter
            (fun g ->
              List.iter
                (fun fs ->
                  if fs.fs_ty = Sstring then
                    for i = 0 to n - 1 do
                      let elt = V.Vec.get l i in
                      let v =
                        if fs.fs_name = Gencons.prim_field then elt
                        else V.field (V.as_object elt) fs.fs_name
                      in
                      total := !total + scalar_bytes Sstring v
                    done
                  else total := !total + (n * scalar_size fs.fs_ty))
                g.g_fields)
            groups)
    layout;
  !total

(* Operation cost charged for packing/unpacking a buffer with this
   layout: roughly two memory operations per packed value, with
   contiguous field-wise columns that the receiving filter does not
   consume charged as bulk copies (1/8 op per value).  [consumed_here]
   says whether the receiving filter reads a given collection field. *)
let marshal_ops (prog : Ast.program) (layout : layout)
    ~(lookup : string -> V.t) ~(consumed_here : string -> string -> bool) :
    int =
  let ops = ref 0 in
  List.iter
    (fun entry ->
      match entry with
      | Escalar _ -> ops := !ops + 2
      | Eobj_field _ -> ops := !ops + 2
      | Eobj_any (v, _, f, ty) ->
          let obj = V.as_object (lookup v) in
          ops := !ops + (value_size_generic prog ty (V.field obj f) / 4)
      | Earray (a, s, _) ->
          let arr = V.as_array (lookup a) in
          let lo, hi = resolve_section lookup arr s in
          ops := !ops + (2 * (hi - lo))
      | Ecoll (c, _, groups) ->
          let l = V.as_list (lookup c) in
          let n = V.Vec.length l in
          List.iter
            (fun g ->
              let group_consumed =
                List.exists (fun fs -> consumed_here c fs.fs_name) g.g_fields
              in
              match (g.g_layout, group_consumed) with
              | `Fieldwise, false ->
                  (* forwarded column: bulk copy *)
                  ops := !ops + (n * List.length g.g_fields / 8) + 1
              | _ ->
                  ops := !ops + (2 * n * List.length g.g_fields))
            groups)
    layout;
  !ops

let pp_group ppf g =
  let layout = match g.g_layout with `Instance -> "inst" | `Fieldwise -> "field" in
  Fmt.pf ppf "%s(%a)" layout
    Fmt.(list ~sep:(any ",") (fun ppf fs -> Fmt.string ppf fs.fs_name))
    g.g_fields

let pp_entry ppf = function
  | Escalar (v, _) -> Fmt.pf ppf "scalar %s" v
  | Eobj_field (v, _, f, _) -> Fmt.pf ppf "obj %s.%s" v f
  | Eobj_any (v, _, f, ty) -> Fmt.pf ppf "obj %s.%s:%s" v f (Ast.ty_to_string ty)
  | Earray (a, s, _) -> Fmt.pf ppf "array %s%s" a (Section.to_string s)
  | Ecoll (c, _, groups) ->
      Fmt.pf ppf "coll %s<%a>" c Fmt.(list ~sep:(any "; ") pp_group) groups

let pp ppf (l : layout) = Fmt.(list ~sep:(any "@\n") pp_entry) ppf l
