(** End-to-end compilation driver.

    parse -> type check -> loop fission and boundary selection ->
    Gen/Cons and ReqComm analysis -> profiling -> decomposition ->
    filter code generation. *)

open Lang
open Datacutter

type strategy =
  | Decomp
      (** the compiler's decomposition: best of the Fig. 3 DP and the
          steady-state bottleneck search by predicted §4.3 total *)
  | Default
      (** the paper's baseline (§6.2): read on the data host, all
          processing on the compute unit, results viewed on C_m *)
  | Fixed of int array  (** explicit segment-to-unit map *)

type t = {
  prog : Ast.program;
  segments : Boundary.segment list;
  rc : Reqcomm.t;
  tyenv : Tyenv.t;
  profile : Profile.t;
  pipeline : Costmodel.pipeline;
  constraints : Decompose.constraints;
  assignment : Costmodel.assignment;
  predicted_latency : float;
  predicted_total : float;
  plan : Codegen.plan;
}

(** Parse and type check only.  @raise Srcloc.Error on user errors. *)
val front_end :
  ?file:string -> externs_sig:Typecheck.extern_sig list -> string -> Ast.program

(** Fission and segment a program's pipelined body. *)
val segment : prog:Ast.program -> Boundary.segment list

(** Full compilation.  [source_externs]/[sink_externs] name the host
    functions that pin segments to the first/last unit; segment 0 (the
    read) is pinned to C_1 even when no source extern is named.
    [samples] are the packets profiled; [final_copies] the number of
    transparent copies that will hold reduction partials. *)
val compile :
  ?file:string ->
  source:string ->
  externs_sig:Typecheck.extern_sig list ->
  externs:(string * Interp.extern_fn) list ->
  ?runtime_defs:(string * int) list ->
  pipeline:Costmodel.pipeline ->
  num_packets:int ->
  ?source_externs:string list ->
  ?sink_externs:string list ->
  ?strategy:strategy ->
  ?samples:int list ->
  ?layout_mode:Packing.mode ->
  ?final_copies:int ->
  unit ->
  t

(** Execute the compiled pipeline on a {!Datacutter.Runtime} backend
    (default [Sim]: unit powers and link bandwidths from the
    compile-time pipeline); returns the unified metrics and the sink's
    merged reduction globals.  [latency] only affects the simulated
    links. *)
val execute :
  t ->
  ?backend:Runtime.backend ->
  ?latency:float ->
  ?faults:Fault.plan ->
  ?policy:Supervisor.policy ->
  widths:int array ->
  unit ->
  (Engine.metrics * (string * Value.t) list, Supervisor.run_error) result

(** Legacy conveniences over {!execute}: run on the simulator / on real
    domains, raising {!Supervisor.Run_failed} on failure. *)
val run_simulated :
  t ->
  widths:int array ->
  ?latency:float ->
  unit ->
  Engine.metrics * (string * Value.t) list

val run_parallel :
  t -> widths:int array -> unit -> Engine.metrics * (string * Value.t) list

(** Sequential reference execution of the same program and inputs,
    returning the reduction globals for correctness comparison. *)
val run_reference : t -> (string * Value.t) list

val pp_summary : Format.formatter -> t -> unit

(** Recompute the decomposition of an already-analyzed program for a new
    environment (§8: resources can change at run time); analysis and
    profiling are reused. *)
val replan : t -> pipeline:Costmodel.pipeline -> ?strategy:strategy -> unit -> t

(** Predicted-best packet count for the program (§8: automatic packet
    sizing): the measured profile is rescaled to each candidate count,
    re-decomposed and scored with the steady-state model.  Returns the
    best count and all scored candidates. *)
val suggest_packet_count :
  t -> ?candidates:int list -> unit -> int * (int * float) list
