(** Metrics-fed re-planning: close the loop from a measured run back
    into the planner.

    A finished run's metrics JSON (written by [cgppc run --metrics-json]
    or the bench harness) records per-copy busy seconds, item counts and
    emitted bytes for every stage.  This module reduces that document to
    a {!Costmodel.profile}-shaped workload — per-packet stage seconds
    and per-packet emitted bytes — so the same machinery that planned
    the original decomposition ({!Costmodel}, {!Decompose},
    {!Datacutter.Engine.plan_batches},
    {!Datacutter.Engine.plan_queue_budgets}) can re-plan stage widths,
    filter boundaries, batch caps and queue budgets from evidence
    instead of estimates.

    Two consumers: [cgppc replan METRICS.json] prints the derived plan,
    and [cgppc run --replan-from METRICS.json] applies the re-planned
    widths/batches/budgets to a fresh static run. *)

(** One pipeline stage as measured: counters summed over the engaged
    copies recorded in the metrics document. *)
type stage_row = {
  rs_name : string;
  rs_width : int;  (** engaged copies the run finished with *)
  rs_busy_s : float;  (** busy seconds, summed over copies *)
  rs_items : int;  (** items popped (0 for sources) *)
  rs_items_out : int;  (** items emitted (0 for sinks) *)
  rs_bytes_out : float;  (** bytes emitted *)
}

type t = {
  rp_backend : string;
  rp_elapsed_s : float;
  rp_rows : stage_row array;
}

val of_json : Obs.Json.t -> (t, string) result
(** Parse a metrics document: either the bare object
    {!Datacutter.Engine.metrics_to_json} emits or a full
    [cgppc run --metrics-json] document (runtime counters under
    ["runtime"]).  [Error] names the missing or malformed member. *)

val of_file : string -> (t, string) result
(** [of_json] over a file; [Error] on unreadable file or parse failure. *)

val packets : t -> int
(** The run's packet count: the largest per-stage item count. *)

val work_s : stage_row -> float
(** Measured per-packet seconds of the whole stage (busy / items,
    falling back to items emitted for sources); 0 when the stage moved
    nothing.  Width-independent: it is the stage's aggregate work, not
    one copy's service time. *)

val service_s : stage_row -> float
(** Measured per-packet per-copy service time ([work_s / width]) — what
    one more copy would relieve. *)

val profile : t -> Costmodel.profile
(** The measured workload as a planner profile: [task.(s)] is
    {!work_s} (weighted so a unit of power 1.0 reproduces the measured
    seconds), [vol_out.(s)] the measured per-packet bytes leaving stage
    [s]. *)

val plan_widths : budget:int -> t -> int array
(** Re-planned stage widths: start from the measured widths and spend
    up to [budget] extra copies greedily, each on the inner stage with
    the highest remaining per-copy service time ({!service_s} scaled by
    the growing width) — the same stage the mid-run autoscaler would
    feed.  Endpoints (stage 0 and the sink) are pinned: sources run
    where the data lives, sinks where results are viewed.
    @raise Invalid_argument when [budget < 0]. *)

val decompose : ?bandwidth:float -> ?latency:float -> t -> Decompose.result
(** Re-run the boundary planner on the measured profile: uniform
    unit-power pipeline (so task seconds are literal), first segment
    pinned to the first unit and last to the last, minimized with
    {!Decompose.bottleneck}.  A boundary that moved means the original
    profile misattributed work between adjacent stages. *)

val item_bytes : t -> float array
(** Per-item bytes leaving each stage (>= 1.0), the weight vector for
    batch and budget planning. *)

val plan_batches : cap:int -> t -> int array
(** Measured-size-weighted batch caps
    ({!Datacutter.Engine.plan_batches} over {!item_bytes}). *)

val plan_queue_budgets : total:int -> widths:int array -> t -> int array
(** Split a run memory budget over the consumer queues by measured
    stream weight ({!Datacutter.Engine.plan_queue_budgets}). *)

(** The full derived plan, for printing and for [--replan-from]. *)
type plan = {
  pl_widths : int array;
  pl_stage_batch : int array option;  (** when a batch cap was given *)
  pl_queue_budgets : int array option;  (** when a memory budget was given *)
  pl_bottleneck : int;  (** argmax measured per-copy service stage *)
  pl_decompose : Decompose.result;
}

val plan : ?batch_cap:int -> ?mem_budget:int -> budget:int -> t -> plan

val pp_plan : Format.formatter -> t * plan -> unit
(** Human-readable summary: measured service table, re-planned widths,
    batch caps and budgets. *)
