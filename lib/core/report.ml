(* Predicted-vs-measured bottleneck attribution (see report.mli). *)

type stage_row = {
  sr_stage : int;
  sr_name : string;
  sr_width : int;
  sr_items : int;
  sr_busy_s : float;
  sr_utilization : float;
  sr_predicted_s : float;
  sr_measured_s : float option;
  sr_error_pct : float option;
}

type t = {
  elapsed_s : float;
  packets : int;
  rows : stage_row array;
  predicted_bottleneck : int;
  measured_bottleneck : int;
  agree : bool;
  predicted_link_s : float array;
  link_bound : bool;
  mem_budget : int option;
  spilled_bytes : int;
  spill_segments : int;
  mem_high_water : int;
  credit_stall_s : float;
  rtt_bound : bool;
}

let argmax (f : int -> float) n =
  let best = ref 0 in
  for i = 1 to n - 1 do
    if f i > f !best then best := i
  done;
  !best

let make ~pipeline ~profile ~assignment ~(metrics : Datacutter.Engine.metrics)
    =
  let open Datacutter in
  let m = Costmodel.width_of pipeline in
  if Array.length metrics.Engine.busy_s <> m then
    invalid_arg
      (Printf.sprintf
         "Report.make: pipeline has %d units but the metrics record has %d \
          stages"
         m
         (Array.length metrics.Engine.busy_s));
  let st = Costmodel.stage_times pipeline profile assignment in
  let elapsed = metrics.Engine.elapsed_s in
  let sum_f = Array.fold_left ( +. ) 0.0 in
  let sum_i = Array.fold_left ( + ) 0 in
  let rows =
    Array.init m (fun s ->
        let width = Array.length metrics.Engine.busy_s.(s) in
        let busy = sum_f metrics.Engine.busy_s.(s) in
        let items = sum_i metrics.Engine.items.(s) in
        let predicted = st.Costmodel.unit_time.(s) in
        (* A stage that saw no packets has no measurable service time —
           [None], not 0.0, so the JSON carries [null] rather than a
           fake perfect measurement (or a NaN from 0/0). *)
        let measured =
          if items = 0 || width = 0 then None
          else Some (busy /. float_of_int items /. float_of_int width)
        in
        let error_pct =
          match measured with
          | Some ms when predicted > 0.0 ->
              Some ((ms -. predicted) /. predicted *. 100.0)
          | _ -> None
        in
        {
          sr_stage = s;
          sr_name = metrics.Engine.stage_names.(s);
          sr_width = width;
          sr_items = items;
          sr_busy_s = busy;
          sr_utilization =
            (if elapsed > 0.0 && width > 0 then
               busy /. (float_of_int width *. elapsed)
             else 0.0);
          sr_predicted_s = predicted;
          sr_measured_s = measured;
          sr_error_pct = error_pct;
        })
  in
  let predicted_bottleneck = argmax (fun s -> st.Costmodel.unit_time.(s)) m in
  let measured_bottleneck = argmax (fun s -> rows.(s).sr_utilization) m in
  let max_unit = st.Costmodel.unit_time.(predicted_bottleneck) in
  let max_link = Array.fold_left Float.max 0.0 st.Costmodel.link_time in
  (* Proc-backend transport rollup: time the drivers spent blocked with
     every frame credit spent.  When those stalls dominate the wall
     time, the run is bound by the worker round trip, not by compute —
     the fix is a deeper --inflight window, not more copies. *)
  let credit_stall_s =
    match List.assoc_opt "transport" metrics.Engine.extra with
    | Some (Obs.Json.Obj kv) -> (
        match List.assoc_opt "credit_stall_s" kv with
        | Some (Obs.Json.Float f) -> f
        | _ -> 0.0)
    | _ -> 0.0
  in
  {
    elapsed_s = elapsed;
    packets = profile.Costmodel.packets;
    rows;
    predicted_bottleneck;
    measured_bottleneck;
    agree = predicted_bottleneck = measured_bottleneck;
    predicted_link_s = st.Costmodel.link_time;
    link_bound = max_link > max_unit;
    mem_budget = metrics.Engine.mem_budget;
    spilled_bytes = metrics.Engine.spilled_bytes;
    spill_segments = metrics.Engine.spill_segments;
    mem_high_water = metrics.Engine.mem_high_water;
    credit_stall_s;
    rtt_bound = elapsed > 0.0 && credit_stall_s > 0.5 *. elapsed;
  }

let pp ppf t =
  Fmt.pf ppf "bottleneck attribution (%d packets, elapsed %.4fs):@\n"
    t.packets t.elapsed_s;
  Fmt.pf ppf "  %-5s %-12s %5s %7s %7s %14s %14s %9s@\n" "stage" "name"
    "width" "items" "util%" "predicted(s/p)" "measured(s/p)" "err%";
  Array.iter
    (fun r ->
      Fmt.pf ppf "  %-5d %-12s %5d %7d %6.1f%% %14.3e %14s %9s@\n"
        r.sr_stage r.sr_name r.sr_width r.sr_items
        (r.sr_utilization *. 100.0)
        r.sr_predicted_s
        (match r.sr_measured_s with
        | Some ms -> Fmt.str "%.3e" ms
        | None -> "-")
        (match r.sr_error_pct with
        | Some e -> Fmt.str "%+.1f%%" e
        | None -> "-"))
    t.rows;
  Array.iteri
    (fun i lt -> Fmt.pf ppf "  link %d->%d: predicted %.3es/packet@\n" i (i + 1) lt)
    t.predicted_link_s;
  let name s = t.rows.(s).sr_name in
  if t.agree then
    Fmt.pf ppf
      "  bottleneck: stage %d (%s) — cost model and measurement agree@\n"
      t.measured_bottleneck
      (name t.measured_bottleneck)
  else
    Fmt.pf ppf
      "  bottleneck: predicted stage %d (%s), measured stage %d (%s) — \
       see the per-stage prediction error above@\n"
      t.predicted_bottleneck
      (name t.predicted_bottleneck)
      t.measured_bottleneck
      (name t.measured_bottleneck);
  if t.link_bound then
    Fmt.pf ppf
      "  note: the model predicts a link outweighs every computing stage \
       (communication-bound)@\n";
  if t.rtt_bound then
    Fmt.pf ppf
      "  note: drivers spent %.4fs blocked with every frame credit spent \
       (RTT-bound) — raise --inflight to deepen the pipelined window@\n"
      t.credit_stall_s;
  (match t.mem_budget with
  | Some b ->
      Fmt.pf ppf
        "  memory: budget %d bytes, high water %d; spilled %d bytes in %d \
         segment%s@\n"
        b t.mem_high_water t.spilled_bytes t.spill_segments
        (if t.spill_segments = 1 then "" else "s");
      if t.spilled_bytes > 0 then
        Fmt.pf ppf
          "  note: the run went out of core — throughput includes spill \
           I/O; raise --mem-budget to keep the working set resident@\n"
  | None -> ())

let to_json t =
  let module J = Obs.Json in
  let row r =
    J.Obj
      ([
         ("stage", J.Int r.sr_stage);
         ("name", J.Str r.sr_name);
         ("width", J.Int r.sr_width);
         ("items", J.Int r.sr_items);
         ("busy_s", J.Float r.sr_busy_s);
         ("utilization", J.Float r.sr_utilization);
         ("predicted_service_s", J.Float r.sr_predicted_s);
         ( "measured_service_s",
           match r.sr_measured_s with
           | Some ms -> J.Float ms
           | None -> J.Null );
       ]
      @
      match r.sr_error_pct with
      | Some e -> [ ("error_pct", J.Float e) ]
      | None -> [])
  in
  J.Obj
    [
      ("elapsed_s", J.Float t.elapsed_s);
      ("packets", J.Int t.packets);
      ("stages", J.List (Array.to_list (Array.map row t.rows)));
      ( "predicted_link_s",
        J.List
          (Array.to_list (Array.map (fun f -> J.Float f) t.predicted_link_s))
      );
      ("predicted_bottleneck", J.Int t.predicted_bottleneck);
      ("measured_bottleneck", J.Int t.measured_bottleneck);
      ("agree", J.Bool t.agree);
      ("link_bound", J.Bool t.link_bound);
      ("credit_stall_s", J.Float t.credit_stall_s);
      ("rtt_bound", J.Bool t.rtt_bound);
      ( "memory",
        J.Obj
          [
            ( "budget",
              match t.mem_budget with Some b -> J.Int b | None -> J.Null );
            ("spilled_bytes", J.Int t.spilled_bytes);
            ("spill_segments", J.Int t.spill_segments);
            ("mem_high_water", J.Int t.mem_high_water);
          ] );
    ]
