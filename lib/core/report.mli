(** Bottleneck attribution: the cost model's per-stage predictions
    tabulated against a run's measured metrics.

    The paper validates its decomposition DP by comparing predicted
    per-filter times against measured ones (§6); this module computes
    that comparison from a {!Costmodel.stage_times} prediction and an
    {!Datacutter.Engine.metrics} record, names the bottleneck stage
    both sides believe in, and quantifies the per-stage prediction
    error — the feedback signal adaptive re-decomposition consumes.

    Conventions: the cost model's unit [s] aggregates the whole stage
    (its power is the per-copy power times the width), so the measured
    per-packet service time is normalized the same way:
    [busy / items / width].  Utilization is [busy / (width * elapsed)],
    the fraction of the run each stage's copies spent computing. *)

type stage_row = {
  sr_stage : int;
  sr_name : string;             (** stage name from the metrics record *)
  sr_width : int;               (** copies *)
  sr_items : int;               (** packets processed, summed over copies *)
  sr_busy_s : float;            (** busy seconds, summed over copies *)
  sr_utilization : float;       (** busy / (width * elapsed) *)
  sr_predicted_s : float;       (** cost model: per-packet aggregate time *)
  sr_measured_s : float option;
      (** busy / items / width; [None] when the stage processed no
          packets — serialized as JSON [null], never NaN/inf *)
  sr_error_pct : float option;
      (** (measured - predicted) / predicted, as a percentage; [None]
          when the prediction is 0 or the stage saw no packets *)
}

type t = {
  elapsed_s : float;
  packets : int;
  rows : stage_row array;       (** one per pipeline stage, in order *)
  predicted_bottleneck : int;   (** argmax of predicted stage time *)
  measured_bottleneck : int;    (** argmax of measured utilization *)
  agree : bool;                 (** the two argmaxes coincide *)
  predicted_link_s : float array;
      (** per-packet predicted link times; a link can out-bottleneck
          every computing stage (communication-bound pipelines) *)
  link_bound : bool;
      (** the model predicts a link, not a stage, limits throughput *)
  mem_budget : int option;      (** the run's queue-memory budget, if any *)
  spilled_bytes : int;          (** bytes that overflowed to disk *)
  spill_segments : int;         (** spill segments written *)
  mem_high_water : int;
      (** peak in-memory queue bytes (summed per-queue high waters) *)
  credit_stall_s : float;
      (** proc backend: seconds drivers spent blocked with every frame
          credit spent (from the metrics ["transport"] section); 0 on
          other backends *)
  rtt_bound : bool;
      (** credit stalls dominate the wall time — the run is bound by
          the worker round trip; raising [--inflight] is the lever *)
}

val make :
  pipeline:Costmodel.pipeline ->
  profile:Costmodel.profile ->
  assignment:Costmodel.assignment ->
  metrics:Datacutter.Engine.metrics ->
  t
(** @raise Invalid_argument when the pipeline's unit count differs from
    the metrics record's stage count. *)

val pp : Format.formatter -> t -> unit
(** Human-readable table plus the bottleneck verdict. *)

val to_json : t -> Obs.Json.t
(** Machine-readable form (the metrics-JSON ["report"] section). *)
