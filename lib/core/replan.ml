(* Metrics-fed re-planning (see replan.mli). *)

module J = Obs.Json

type stage_row = {
  rs_name : string;
  rs_width : int;
  rs_busy_s : float;
  rs_items : int;
  rs_items_out : int;
  rs_bytes_out : float;
}

type t = {
  rp_backend : string;
  rp_elapsed_s : float;
  rp_rows : stage_row array;
}

let sum_f l = List.fold_left (fun a j -> a +. J.to_float j) 0.0 l
let sum_i l = List.fold_left (fun a j -> a + J.to_int j) 0 l

let row_of_json j =
  let fl name = J.to_list (J.member name j) in
  {
    rs_name = J.to_str (J.member "name" j);
    rs_width = List.length (fl "busy_s");
    rs_busy_s = sum_f (fl "busy_s");
    rs_items = sum_i (fl "items");
    rs_items_out = sum_i (fl "items_out");
    rs_bytes_out = sum_f (fl "bytes_out");
  }

let of_json j =
  (* Accept both a bare runtime-metrics object and a full `cgppc run
     --metrics-json` document (runtime counters under "runtime"). *)
  let j = match J.member_opt "runtime" j with Some r -> r | None -> j in
  try
    let rows =
      Array.of_list (List.map row_of_json (J.to_list (J.member "stages" j)))
    in
    if Array.length rows < 2 then
      Error "metrics document has fewer than two stages"
    else
      Ok
        {
          rp_backend =
            (match J.member_opt "backend" j with
            | Some s -> J.to_str s
            | None -> "unknown");
          rp_elapsed_s = J.to_float (J.member "elapsed_s" j);
          rp_rows = rows;
        }
  with J.Parse_error msg -> Error ("not a metrics document: " ^ msg)

let of_file path =
  match
    try Ok (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error msg -> Error msg
  with
  | Error msg -> Error msg
  | Ok text -> (
      match J.parse_result text with
      | Error msg -> Error (path ^ ": " ^ msg)
      | Ok j -> of_json j)

let packets t =
  Array.fold_left
    (fun a r -> max a (max r.rs_items r.rs_items_out))
    0 t.rp_rows

let work_s r =
  let n = if r.rs_items > 0 then r.rs_items else r.rs_items_out in
  if n = 0 then 0.0 else r.rs_busy_s /. float_of_int n

let service_s r =
  if r.rs_width = 0 then 0.0 else work_s r /. float_of_int r.rs_width

let profile t =
  let n = max 1 (packets t) in
  {
    Costmodel.task = Array.map work_s t.rp_rows;
    vol_out =
      Array.map (fun r -> r.rs_bytes_out /. float_of_int n) t.rp_rows;
    packets = n;
  }

let plan_widths ~budget t =
  if budget < 0 then invalid_arg "Replan.plan_widths: negative budget";
  let m = Array.length t.rp_rows in
  let widths = Array.map (fun r -> max 1 r.rs_width) t.rp_rows in
  let work = Array.map work_s t.rp_rows in
  (* Greedy water-filling, one copy at a time onto the inner stage with
     the worst remaining per-copy service — exactly the stage the
     mid-run autoscaler would pick, so a replanned static run starts
     where an autoscaled run converges. *)
  let per_copy s = work.(s) /. float_of_int widths.(s) in
  (* Endpoints are pinned, so their service time is the floor no amount
     of inner width can beat — growing an inner stage past it just
     burns copies. *)
  let floor_s = Float.max (per_copy 0) (per_copy (m - 1)) in
  for _ = 1 to budget do
    let best = ref (-1) in
    for s = 1 to m - 2 do
      if work.(s) > 0.0 && (!best < 0 || per_copy s > per_copy !best) then
        best := s
    done;
    if !best >= 0 && per_copy !best > floor_s then
      widths.(!best) <- widths.(!best) + 1
  done;
  widths

let item_bytes t =
  Array.map
    (fun r ->
      if r.rs_items_out = 0 then 1.0
      else Float.max 1.0 (r.rs_bytes_out /. float_of_int r.rs_items_out))
    t.rp_rows

let decompose ?(bandwidth = 1e12) ?(latency = 0.0) t =
  let m = Array.length t.rp_rows in
  let pipeline =
    Costmodel.uniform ~m ~power:1.0 ~bandwidth ~latency ()
  in
  let cons = { Decompose.pin_first = [ 0 ]; pin_last = [ m - 1 ] } in
  Decompose.bottleneck ~cons pipeline (profile t)

let plan_batches ~cap t =
  Datacutter.Engine.plan_batches ~cap ~item_bytes:(item_bytes t) ()

let plan_queue_budgets ~total ~widths t =
  Datacutter.Engine.plan_queue_budgets ~total ~item_bytes:(item_bytes t)
    ~widths

type plan = {
  pl_widths : int array;
  pl_stage_batch : int array option;
  pl_queue_budgets : int array option;
  pl_bottleneck : int;
  pl_decompose : Decompose.result;
}

let plan ?batch_cap ?mem_budget ~budget t =
  let widths = plan_widths ~budget t in
  let bottleneck = ref 0 in
  Array.iteri
    (fun s r ->
      if service_s r > service_s t.rp_rows.(!bottleneck) then bottleneck := s)
    t.rp_rows;
  {
    pl_widths = widths;
    pl_stage_batch =
      (match batch_cap with
      | Some cap when cap > 1 -> Some (plan_batches ~cap t)
      | _ -> None);
    pl_queue_budgets =
      Option.map
        (fun total -> plan_queue_budgets ~total ~widths t)
        mem_budget;
    pl_bottleneck = !bottleneck;
    pl_decompose = decompose t;
  }

let pp_plan ppf (t, p) =
  let m = Array.length t.rp_rows in
  Fmt.pf ppf "replan from a %s run (%.4fs elapsed, %d packets):@\n"
    t.rp_backend t.rp_elapsed_s (packets t);
  Fmt.pf ppf "  %-5s %-12s %6s %8s %14s %14s %6s@\n" "stage" "name" "width"
    "items" "work(s/pkt)" "service(s/pkt)" "new";
  Array.iteri
    (fun s r ->
      Fmt.pf ppf "  %-5d %-12s %6d %8d %14.3e %14.3e %6d%s@\n" s r.rs_name
        r.rs_width
        (max r.rs_items r.rs_items_out)
        (work_s r) (service_s r) p.pl_widths.(s)
        (if s = p.pl_bottleneck then "  <- bottleneck" else ""))
    t.rp_rows;
  Fmt.pf ppf "  widths: %s -> %s@\n"
    (String.concat "-"
       (Array.to_list
          (Array.map (fun r -> string_of_int r.rs_width) t.rp_rows)))
    (String.concat "-"
       (Array.to_list (Array.map string_of_int p.pl_widths)));
  (match p.pl_stage_batch with
  | Some b ->
      Fmt.pf ppf "  batch plan: %s@\n"
        (String.concat " "
           (Array.to_list (Array.map string_of_int b)))
  | None -> ());
  (match p.pl_queue_budgets with
  | Some b ->
      Fmt.pf ppf "  queue budgets: %s@\n"
        (String.concat " "
           (Array.to_list (Array.map string_of_int b)))
  | None -> ());
  let asg = p.pl_decompose.Decompose.assignment in
  Fmt.pf ppf "  measured-profile decomposition (%d segments on %d units): %a@\n"
    (Array.length asg) m Costmodel.pp_assignment asg
