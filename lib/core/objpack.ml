(* Whole-object serialization for reduction state.

   Per-packet communication is layout-optimized by [Packing]; reduction
   partials, in contrast, travel once per copy at finalize time and are
   serialized generically (an object's fields in declaration order,
   recursing into arrays, lists and nested objects) using [Packing]'s
   generic value codec. *)

open Lang
module V = Value

(* Pack a set of named globals (name, declared type, value). *)
let pack_globals prog (globals : (string * Ast.ty * V.t) list) : Bytes.t =
  let buf = Buffer.create 256 in
  Packing.buf_add_int buf (List.length globals);
  List.iter
    (fun (name, ty, v) ->
      Packing.buf_add_string buf name;
      Packing.pack_value_generic buf prog ty v)
    globals;
  Buffer.to_bytes buf

let unpack_globals prog (types : (string * Ast.ty) list) (data : Bytes.t) :
    (string * V.t) list =
  let r = Packing.reader_of data in
  let n = Packing.read_int r in
  List.init n (fun _ ->
      let name = Packing.read_string r in
      match List.assoc_opt name types with
      | Some ty -> (name, Packing.unpack_value_generic r prog ty)
      | None -> V.runtime_errorf "objpack: unknown global %s in payload" name)

let packed_size prog globals = Bytes.length (pack_globals prog globals)
