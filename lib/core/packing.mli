(** Buffer packing (§5).

    Decides how the values in a ReqComm set are arranged in the stream
    buffer between two filters and performs the byte-level serialization.
    For collection-element fields the paper gives two layouts:

    - instance-wise: [<count, t1.x, t1.y, ..., tn.x, tn.y>]
    - field-wise:    [<count, t1.x .. tn.x, t1.y .. tn.y>]

    Fields first consumed by the receiving filter are grouped together
    instance-wise; fields first consumed later form field-wise groups
    sorted by first reader.  A contiguous column the receiving filter
    only forwards can be bulk-copied, which is where field-wise wins. *)

open Lang

type scalar_ty = Sint | Sfloat | Sbool | Sstring | Srange

val scalar_ty_of_ast : Ast.ty -> scalar_ty option

(** Fixed wire size in bytes; -1 for strings (variable). *)
val scalar_size : scalar_ty -> int

type field_spec = { fs_name : string; fs_ty : scalar_ty }

(** A group of element fields packed together: [`Instance] interleaves
    them per element, [`Fieldwise] stores one contiguous column per
    field. *)
type group = {
  g_layout : [ `Instance | `Fieldwise ];
  g_fields : field_spec list;
  g_first_consumer : int option;  (** filter that first reads them *)
}

type entry =
  | Escalar of string * scalar_ty
  | Eobj_field of string * string * string * scalar_ty
      (** object var, its class, field name, field type *)
  | Eobj_any of string * string * string * Ast.ty
      (** object var, its class, structured field (array/list/object
          typed), serialized generically *)
  | Earray of string * Section.t * scalar_ty
  | Ecoll of string * string option * group list
      (** collection var, element class ([None] = primitives), ordered
          field groups *)

type layout = entry list

(** Layout policy: [`Auto] is the paper's §5 rule; the others force one
    scheme everywhere (for the packing ablation). *)
type mode = [ `Auto | `All_instance | `All_fieldwise ]

(** Layout for the boundary entering segment [cut] under the
    decomposition described by [filter_of_seg]. *)
val layout_for_cut :
  ?mode:mode ->
  Ast.program ->
  Tyenv.t ->
  Reqcomm.t ->
  cut:int ->
  filter_of_seg:(int -> int) ->
  layout

(** {2 Low-level wire helpers} (shared with {!Objpack} and the manual
    application pipelines) *)

val buf_add_int : Buffer.t -> int -> unit
val buf_add_float : Buffer.t -> float -> unit
val buf_add_bool : Buffer.t -> bool -> unit
val buf_add_string : Buffer.t -> string -> unit

(** A bounded cursor over packed bytes ({!Wirefmt.reader}): [limit]
    caps every read so a reader can decode one window of a larger
    buffer in place. *)
type reader = { data : Bytes.t; mutable pos : int; limit : int }

(** [reader_of ?pos ?limit data] — [limit] defaults to the whole
    buffer. *)
val reader_of : ?pos:int -> ?limit:int -> Bytes.t -> reader

val read_int : reader -> int
val read_float : reader -> float
val read_bool : reader -> bool
val read_string : reader -> string

(** {2 Generic structured-value codec} — any PipeLang value by its
    declared type (used for object fields of structured type and for
    reduction-state payloads) *)

val pack_value_generic : Buffer.t -> Ast.program -> Ast.ty -> Value.t -> unit
val unpack_value_generic : reader -> Ast.program -> Ast.ty -> Value.t
val value_size_generic : Ast.program -> Ast.ty -> Value.t -> int

(** Wrap an environment lookup so the ["runtime:<name>"] symbols the
    analysis produces for [runtime_define] loop bounds resolve against
    the run-time definition table. *)
val runtime_aware_lookup :
  runtime_def:(string -> int option) ->
  lookup:(string -> Value.t) ->
  string ->
  Value.t

(** {2 Packing and unpacking whole boundary layouts} *)

(** Serialize the values reached through [lookup]. *)
val pack : Ast.program -> layout -> lookup:(string -> Value.t) -> Bytes.t

(** Rebuild the named values from a buffer produced with the same
    layout.  Collection elements and objects are rebuilt from their class
    declarations (non-communicated fields keep zero values). *)
val unpack : Ast.program -> layout -> Bytes.t -> (string * Value.t) list

(** Byte size {!pack} would produce, without building the buffer. *)
val packed_size : Ast.program -> layout -> lookup:(string -> Value.t) -> int

(** Marshalling operation cost for this layout: two memory operations per
    packed value, except contiguous field-wise columns the receiving
    filter does not consume, which cost a bulk copy — §5's rationale for
    the field-wise layout.  [consumed_here c f] says whether the filter
    reads field [f] of collection [c]. *)
val marshal_ops :
  Ast.program ->
  layout ->
  lookup:(string -> Value.t) ->
  consumed_here:(string -> string -> bool) ->
  int

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> layout -> unit
