(* End-to-end compilation driver.

   parse -> type check -> loop fission & boundary selection -> Gen/Cons
   & ReqComm analysis -> profiling -> decomposition -> filter codegen.

   The decomposition strategy is either the paper's dynamic program
   (`Decomp`), the Default baseline (read on the data host, everything
   else on the compute unit, results viewed on the last unit), or an
   explicit assignment (used for manual comparisons and ablations). *)

open Lang
open Datacutter
module SS = Set.Make (String)

let src = Logs.Src.create "cgpp.compile" ~doc:"compilation driver"

module Log = (val Logs.src_log src : Logs.LOG)

type strategy =
  | Decomp                     (* DP decomposition, §4.4 *)
  | Default                    (* forward-everything baseline, §6.2 *)
  | Fixed of int array         (* explicit segment -> unit map *)

type t = {
  prog : Ast.program;
  segments : Boundary.segment list;
  rc : Reqcomm.t;
  tyenv : Tyenv.t;
  profile : Profile.t;
  pipeline : Costmodel.pipeline;
  constraints : Decompose.constraints;
  assignment : Costmodel.assignment;
  predicted_latency : float;
  predicted_total : float;
  plan : Codegen.plan;
}

(* Compiler phases announce themselves as spans on the compiler's
   virtual thread (no-ops unless Obs.Trace.enable was called). *)
let phase name f = Obs.Trace.with_span ~cat:"compiler" name f

(* Parse and type check only (no decomposition). *)
let front_end ?(file = "<input>") ~externs_sig source =
  phase "front_end" (fun () ->
      let prog = Parser.parse ~file source in
      Typecheck.check ~externs:externs_sig prog;
      prog)

let segment ~prog =
  phase "boundaries" (fun () ->
      Boundary.segments_of_body prog.Ast.pipeline.Ast.pd_body)

(* Pinning constraints from the extern classification. *)
let constraints_of ~rc ~m ~source_externs ~sink_externs =
  ignore m;
  let pin_first = Reqcomm.segments_calling rc (SS.of_list source_externs) in
  let pin_last = Reqcomm.segments_calling rc (SS.of_list sink_externs) in
  (* segment 0 contains the data read by construction; keep it pinned even
     when the program names no explicit source extern *)
  let pin_first = if pin_first = [] then [ 0 ] else pin_first in
  { Decompose.pin_first; pin_last }

let compile ?(file = "<input>") ~(source : string)
    ~(externs_sig : Typecheck.extern_sig list)
    ~(externs : (string * Interp.extern_fn) list)
    ?(runtime_defs : (string * int) list = [])
    ~(pipeline : Costmodel.pipeline) ~(num_packets : int)
    ?(source_externs : string list = []) ?(sink_externs : string list = [])
    ?(strategy = Decomp) ?(samples = [ 0 ])
    ?(layout_mode : Packing.mode = `Auto) ?(final_copies = 1) () : t =
  let prog = front_end ~file ~externs_sig source in
  Log.info (fun m ->
      m "front end: %d classes, %d functions, %d globals"
        (List.length prog.Ast.classes)
        (List.length prog.Ast.funcs)
        (List.length prog.Ast.globals));
  let segments = segment ~prog in
  Log.info (fun m ->
      m "boundaries: %d atomic filters (%s)" (List.length segments)
        (String.concat " | "
           (List.map (fun s -> s.Boundary.seg_label) segments)));
  let rc = phase "reqcomm" (fun () -> Reqcomm.analyze prog segments) in
  Log.debug (fun m -> m "reqcomm:@
%a" Reqcomm.pp rc);
  let tyenv = Tyenv.of_segments prog segments in
  (* Boundary communication copies values, which would break aliasing
     between two references crossing the same boundary: reject such
     programs up front (may-alias is conservative, see Alias). *)
  let () =
    phase "alias_check" @@ fun () ->
    let body = List.concat_map (fun s -> s.Boundary.seg_stmts) segments in
    let gctx = Gencons.create_ctx_for_body prog body in
    let aliases = Gencons.aliases_of gctx body in
    let n1 = List.length segments in
    for i = 1 to n1 - 1 do
      let bases =
        Varset.fold
          (fun item acc ->
            let b = Reqcomm.item_base item in
            match Tyenv.find tyenv b with
            | Some (Ast.Tclass _) | Some (Ast.Tlist _) | Some (Ast.Tarray _)
              ->
                if List.mem b acc then acc else b :: acc
            | _ -> acc)
          (Reqcomm.reqcomm_into rc i) []
      in
      List.iteri
        (fun j a ->
          List.iteri
            (fun k b ->
              if j < k && Alias.may_alias aliases a b then
                Srcloc.errorf prog.Ast.pipeline.Ast.pd_loc
                  "references %s and %s may alias and would cross the                    candidate boundary b%d; aliased references cannot be                    communicated by value"
                  a b i)
            bases)
        bases
    done
  in
  let m = Costmodel.width_of pipeline in
  let runtime_defs = ("num_packets", num_packets) :: runtime_defs in
  let profile =
    phase "profile" (fun () ->
        Profile.run prog segments rc ~externs ~runtime_defs ~num_packets
          ~samples ~final_copies ())
  in
  Log.info (fun m' ->
      m' "profile: tasks [%s], volumes [%s]"
        (String.concat "; "
           (Array.to_list
              (Array.map (Printf.sprintf "%.0f") profile.Profile.profile.Costmodel.task)))
        (String.concat "; "
           (Array.to_list
              (Array.map (Printf.sprintf "%.0f")
                 profile.Profile.profile.Costmodel.vol_out))));
  let constraints = constraints_of ~rc ~m ~source_externs ~sink_externs in
  let n1 = List.length segments in
  let assignment, predicted_latency =
    phase "decompose" @@ fun () ->
    match strategy with
    | Decomp ->
        (* the Fig. 3 DP minimizes single-packet latency; the bottleneck
           search minimizes the §4.3 steady-state total — keep whichever
           predicts the lower total time *)
        let r1 = Decompose.dp ~cons:constraints pipeline profile.Profile.profile in
        let r2 =
          Decompose.bottleneck ~cons:constraints pipeline profile.Profile.profile
        in
        let r = if r1.Decompose.total <= r2.Decompose.total then r1 else r2 in
        (r.Decompose.assignment, r.Decompose.latency)
    | Default ->
        let a = Decompose.default_assignment ~m ~segments:n1 in
        (a, Costmodel.latency_time pipeline profile.Profile.profile a)
    | Fixed a ->
        if Array.length a <> n1 then
          invalid_arg "compile: fixed assignment length mismatch";
        (a, Costmodel.latency_time pipeline profile.Profile.profile a)
  in
  let predicted_total =
    Costmodel.total_time pipeline profile.Profile.profile assignment
  in
  Log.info (fun m ->
      m "decomposition %a: predicted latency %.6fs, total %.6fs"
        Costmodel.pp_assignment assignment predicted_latency predicted_total);
  let plan =
    phase "codegen" (fun () ->
        Codegen.make_plan ~layout_mode prog segments rc ~assignment ~m
          ~num_packets ~externs ~runtime_defs)
  in
  {
    prog;
    segments;
    rc;
    tyenv;
    profile;
    pipeline;
    constraints;
    assignment;
    predicted_latency;
    predicted_total;
    plan;
  }

(* Run the compiled pipeline on the chosen backend and return the
   metrics together with the sink's merged reduction globals. *)
let execute (c : t) ?(backend = Runtime.Sim) ?(latency = 0.0) ?faults ?policy
    ~(widths : int array) () =
  let powers = Array.map (fun u -> u.Costmodel.power) c.pipeline.Costmodel.units in
  let bandwidths =
    Array.map (fun l -> l.Costmodel.bandwidth) c.pipeline.Costmodel.links
  in
  let topo, results =
    Codegen.build_topology c.plan ~widths ~powers ~bandwidths ~latency ()
  in
  match Runtime.run_result ~backend ?faults ?policy topo with
  | Error _ as e -> e
  | Ok metrics -> Ok (metrics, results ())

let unwrap = function
  | Ok v -> v
  | Error e -> raise (Supervisor.Run_failed e)

let run_simulated (c : t) ~(widths : int array) ?(latency = 0.0) () =
  unwrap (execute c ~backend:Runtime.Sim ~latency ~widths ())

let run_parallel (c : t) ~(widths : int array) () =
  unwrap (execute c ~backend:Runtime.Par ~widths ())

(* Reference (sequential) execution of the same program and inputs,
   returning the reduction globals for correctness comparison. *)
let run_reference (c : t) : (string * Value.t) list =
  let ctx =
    Interp.create_ctx ~externs:c.plan.Codegen.externs
      ~runtime_defs:c.plan.Codegen.runtime_defs c.prog
  in
  let genv = Interp.run_reference ctx in
  Reqcomm.reduction_globals c.prog
  |> Reqcomm.S.elements
  |> List.map (fun name -> (name, Interp.global_value genv name))

let pp_summary ppf (c : t) =
  Fmt.pf ppf "segments:@\n";
  List.iter
    (fun (s : Boundary.segment) ->
      Fmt.pf ppf "  %a -> C%d@\n" Boundary.pp_segment s
        c.assignment.(s.Boundary.seg_index))
    c.segments;
  Fmt.pf ppf "predicted latency %.6fs, total %.6fs@\n" c.predicted_latency
    c.predicted_total

(* ------------------------------------------------------------------ *)
(* §8 future-work features                                             *)
(* ------------------------------------------------------------------ *)

(* Recompute the decomposition of an already-analyzed program for a new
   environment (the paper's "available compute and communication
   resources can change at runtime").  Front-end analysis and profiling
   are reused; only the decomposition and the codegen plan are redone. *)
let replan (c : t) ~(pipeline : Costmodel.pipeline) ?strategy () : t =
  let strategy =
    match strategy with
    | Some s -> s
    | None -> Decomp
  in
  let m = Costmodel.width_of pipeline in
  let n1 = List.length c.segments in
  let profile = c.profile.Profile.profile in
  let assignment, predicted_latency =
    phase "decompose" @@ fun () ->
    match strategy with
    | Decomp ->
        let r1 = Decompose.dp ~cons:c.constraints pipeline profile in
        let r2 = Decompose.bottleneck ~cons:c.constraints pipeline profile in
        let r = if r1.Decompose.total <= r2.Decompose.total then r1 else r2 in
        (r.Decompose.assignment, r.Decompose.latency)
    | Default ->
        let a = Decompose.default_assignment ~m ~segments:n1 in
        (a, Costmodel.latency_time pipeline profile a)
    | Fixed a ->
        if Array.length a <> n1 then
          invalid_arg "replan: fixed assignment length mismatch";
        (a, Costmodel.latency_time pipeline profile a)
  in
  let plan =
    phase "codegen" (fun () ->
        Codegen.make_plan c.prog c.segments c.rc ~assignment ~m
          ~num_packets:c.plan.Codegen.num_packets
          ~externs:c.plan.Codegen.externs
          ~runtime_defs:c.plan.Codegen.runtime_defs)
  in
  {
    c with
    pipeline;
    assignment;
    predicted_latency;
    predicted_total = Costmodel.total_time pipeline profile assignment;
    plan;
  }

(* Predicted-best packet count for the compiled program (§8
   "automatically choosing the packet size").  The measured profile is
   rescaled to each candidate count, re-decomposed, and scored with the
   steady-state cost model; per-buffer latency penalizes many small
   packets, pipeline fill (and, with [final_copies], end-of-stream
   reduction traffic) penalizes few large ones. *)
let suggest_packet_count (c : t) ?(candidates = [ 2; 4; 8; 12; 16; 24; 32; 48; 64; 96; 128 ])
    () : int * (int * float) list =
  let scored =
    List.filter_map
      (fun n ->
        if n <= 0 then None
        else begin
          let profile =
            Costmodel.rescale_profile c.profile.Profile.profile ~packets:n
          in
          match Decompose.bottleneck ~cons:c.constraints c.pipeline profile with
          | r -> Some (n, r.Decompose.total)
          | exception Invalid_argument _ -> None
        end)
      candidates
  in
  match scored with
  | [] -> invalid_arg "suggest_packet_count: no feasible candidate"
  | (n0, t0) :: rest ->
      let best, _ =
        List.fold_left
          (fun (bn, bt) (n, t) -> if t < bt then (n, t) else (bn, bt))
          (n0, t0) rest
      in
      (best, scored)
