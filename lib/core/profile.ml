(* Workload profiling.

   The cost model (§4.3) needs, per candidate filter, the number of
   operations executed per packet, and per candidate boundary, the
   communication volume.  The compiler obtains both by executing the
   segments on a few sample packets with the instrumented interpreter:
   operation counters give Task(f_i), and the packed size of the ReqComm
   set against the live environment gives Vol(f_i).  (The paper counts
   operations statically; profiling on sample packets is the same model
   with measured trip counts, and keeps the cost model honest for
   data-dependent selectivity such as the isosurface cube test.) *)

open Lang
module V = Value

type t = {
  profile : Costmodel.profile;
  (* bytes that cross each boundary per packet, indexed like
     [Reqcomm.reqcomm_into] (entry i = entering segment i) *)
  boundary_bytes : float array;
  (* packed size of the final reduction state *)
  final_bytes : float;
}

(* Profile [segments] by running [samples] packets end-to-end.  The
   [num_packets] parameter is the N of the cost formula (the real packet
   count of the run being planned, not the sample size). *)
let run (prog : Ast.program) (segments : Boundary.segment list)
    (rc : Reqcomm.t) ~(externs : (string * Interp.extern_fn) list)
    ~(runtime_defs : (string * int) list) ~(num_packets : int)
    ?(samples = [ 0 ]) ?(weights = Opcount.default_weights)
    ?(final_copies = 1) () : t =
  let segs = Array.of_list segments in
  let n1 = Array.length segs in
  if n1 = 0 then invalid_arg "Profile.run: no segments";
  let tyenv = Tyenv.of_segments prog segments in
  (* Volume is layout-independent; use the identity filter map. *)
  let layouts =
    Array.init (n1 + 1) (fun i ->
        if i = 0 then []
        else Packing.layout_for_cut prog tyenv rc ~cut:i ~filter_of_seg:(fun s -> s))
  in
  let ctx = Interp.create_ctx ~externs ~runtime_defs prog in
  let genv = Interp.init_globals ctx in
  let task = Array.make n1 0.0 in
  let vols = Array.make (n1 + 1) 0.0 in
  let n_samples = List.length samples in
  List.iter
    (fun p ->
      Obs.Trace.with_span ~cat:"profile"
        ~args:[ ("packet", Obs.Trace.Aint p) ]
        (Printf.sprintf "sample %d" p)
      @@ fun () ->
      let env = Interp.push_scope genv in
      Interp.bind env prog.Ast.pipeline.Ast.pd_var (V.Vint p);
      Array.iteri
        (fun i seg ->
          let before = Opcount.copy ctx.Interp.counter in
          Interp.exec_stmts ctx env seg.Boundary.seg_stmts;
          let d = Opcount.diff ~after:ctx.Interp.counter ~before in
          task.(i) <- task.(i) +. Opcount.weighted ~weights d;
          if i < n1 - 1 then begin
            let lookup =
              Packing.runtime_aware_lookup
                ~runtime_def:(Hashtbl.find_opt ctx.Interp.runtime_defs)
                ~lookup:(Interp.lookup env)
            in
            vols.(i + 1) <-
              vols.(i + 1)
              +. float_of_int (Packing.packed_size prog layouts.(i + 1) ~lookup)
          end)
        segs)
    samples;
  let avg = float_of_int (max 1 n_samples) in
  Array.iteri (fun i v -> task.(i) <- v /. avg) task;
  Array.iteri (fun i v -> vols.(i) <- v /. avg) vols;
  (* final reduction state size after the sample run *)
  let reduc = Reqcomm.reduction_globals prog in
  let final_globals =
    List.filter_map
      (fun g ->
        if Reqcomm.S.mem g.Ast.gd_name reduc then
          Some (g.Ast.gd_name, g.Ast.gd_ty, Interp.global_value genv g.Ast.gd_name)
        else None)
      prog.Ast.globals
  in
  let final_bytes = float_of_int (Objpack.packed_size prog final_globals) in
  (* vol_out.(i): bytes produced by segment i = bytes entering segment
     i+1.  The last segment's output is the final reduction state; with
     transparent copies every copy ships its partial at finalize, so the
     per-packet amortization scales with [final_copies]. *)
  let vol_out =
    Array.init n1 (fun i ->
        if i = n1 - 1 then
          final_bytes *. float_of_int final_copies
          /. float_of_int (max 1 num_packets)
        else vols.(i + 1))
  in
  {
    profile = { Costmodel.task; vol_out; packets = num_packets };
    boundary_bytes = vols;
    final_bytes;
  }
