(* cgppc — the coarse-grained pipelined-parallelism compiler driver.

   Subcommands:
     inspect   parse/typecheck one of the bundled applications (or a
               PipeLang file) and print its candidate filter boundaries,
               Gen/Cons sets and ReqComm sets;
     plan      run the full compilation pipeline and print the chosen
               decomposition, per-segment placement and predictions;
     run       compile and execute on the simulated cluster (or on real
               domains with --parallel), reporting metrics and results.

   The bundled applications (--app) are the paper's four benchmarks:
   zbuffer, apix, knn, vmscope.  Arbitrary PipeLang files can be compiled
   with --file, but since data sources are host functions, files may only
   use the builtins plus the extern of the selected --app.              *)

open Core
module H = Apps.Harness

type app_choice = Zbuffer | Apix | Knn | Vmscope | Kmeans

let app_of_choice = function
  | Zbuffer -> H.iso_app ~variant:`Zbuffer Apps.Isosurface.small
  | Apix -> H.iso_app ~variant:`Apix Apps.Isosurface.small
  | Knn -> H.knn_app Apps.Knn.base_config
  | Vmscope -> H.vmscope_app Apps.Vmscope.large_query
  | Kmeans ->
      let cfg = Apps.Kmeans.base in
      {
        H.name = "kmeans";
        source = Apps.Kmeans.source;
        externs_sig = Apps.Kmeans.externs_sig;
        externs = Apps.Kmeans.externs cfg (Apps.Kmeans.initial_centroids cfg);
        runtime_defs = Apps.Kmeans.runtime_defs cfg;
        num_packets = cfg.Apps.Kmeans.num_packets;
        source_externs = Apps.Kmeans.source_externs;
      }

let app_conv =
  Cmdliner.Arg.enum
    [
      ("zbuffer", Zbuffer);
      ("apix", Apix);
      ("knn", Knn);
      ("vmscope", Vmscope);
      ("kmeans", Kmeans);
    ]

let load ~file ~app =
  let base = app_of_choice app in
  match file with
  | None -> base
  | Some path ->
      let ic = open_in path in
      let source =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      { base with H.name = Filename.basename path; H.source }

(* --cluster "node_power,view_power,bandwidth,latency" *)
let cluster_of_spec = function
  | None -> H.default_cluster
  | Some spec -> (
      match String.split_on_char ',' spec |> List.map float_of_string with
      | [ node_power; view_power; bandwidth; latency ] ->
          { H.node_power; view_power; bandwidth; latency }
      | _ | (exception _) ->
          invalid_arg
            (Printf.sprintf
               "bad cluster spec %S (want node_power,view_power,bandwidth,latency)"
               spec))

let widths_of_config = function
  | "1-1-1" -> [| 1; 1; 1 |]
  | "2-2-1" -> [| 2; 2; 1 |]
  | "4-4-1" -> [| 4; 4; 1 |]
  | s -> (
      try
        String.split_on_char '-' s |> List.map int_of_string |> Array.of_list
      with _ -> invalid_arg (Printf.sprintf "bad configuration %S" s))

(* --- inspect --- *)

let inspect file app =
  let a = load ~file ~app in
  let prog = Compile.front_end ~file:a.H.name ~externs_sig:a.H.externs_sig a.H.source in
  let segments = Boundary.segments_of_body prog.Lang.Ast.pipeline.Lang.Ast.pd_body in
  let rc = Reqcomm.analyze prog segments in
  Fmt.pr "program %s: %d classes, %d functions, %d globals@." a.H.name
    (List.length prog.Lang.Ast.classes)
    (List.length prog.Lang.Ast.funcs)
    (List.length prog.Lang.Ast.globals);
  Fmt.pr "%d atomic filters, %d candidate boundaries@.@." (List.length segments)
    (Boundary.boundary_count segments);
  Fmt.pr "%a@." Reqcomm.pp rc;
  `Ok ()

(* --- plan --- *)

let strategy_conv =
  Cmdliner.Arg.enum
    [ ("decomp", Compile.Decomp); ("default", Compile.Default) ]

let plan file app config strategy cluster_spec =
  let a = load ~file ~app in
  let widths = widths_of_config config in
  let cluster = cluster_of_spec cluster_spec in
  let c = H.compile ~cluster ~strategy ~widths a in
  Fmt.pr "application %s, configuration %s, strategy %s@.@." a.H.name config
    (match strategy with
    | Compile.Decomp -> "compiler decomposition"
    | Compile.Default -> "default (forward everything)"
    | Compile.Fixed _ -> "fixed");
  Fmt.pr "%a@." Compile.pp_summary c;
  List.iteri
    (fun i t ->
      Fmt.pr "  segment %d: %.0f weighted ops/packet, emits %.0f bytes@." i t
        c.Compile.profile.Profile.profile.Costmodel.vol_out.(i))
    (Array.to_list c.Compile.profile.Profile.profile.Costmodel.task);
  let best, scored = Compile.suggest_packet_count c () in
  Fmt.pr "@.packet-size sweep (predicted total):@.";
  List.iter (fun (n, t) -> Fmt.pr "  %4d packets: %.4fs@." n t) scored;
  Fmt.pr "suggested packet count: %d (currently %d)@." best
    a.H.num_packets;
  `Ok ()

(* --- emit --- *)

let emit file app config strategy cluster_spec =
  let a = load ~file ~app in
  let widths = widths_of_config config in
  let cluster = cluster_of_spec cluster_spec in
  let c = H.compile ~cluster ~strategy ~widths a in
  print_string (Emit.emit_plan c.Compile.plan);
  `Ok ()

(* --- run --- *)

let run file app config strategy parallel cluster_spec =
  let a = load ~file ~app in
  let widths = widths_of_config config in
  let cluster = cluster_of_spec cluster_spec in
  if parallel then begin
    let c = H.compile ~cluster ~strategy ~widths a in
    let topo, results =
      Codegen.build_topology c.Compile.plan ~widths
        ~powers:(H.node_powers cluster widths)
        ~bandwidths:(Array.make (Array.length widths - 1) cluster.H.bandwidth)
        ~latency:cluster.H.latency ()
    in
    let m = Datacutter.Par_runtime.run topo in
    Fmt.pr "parallel run (%d domains): wall time %.4fs@."
      (Array.fold_left ( + ) 0 widths)
      m.Datacutter.Par_runtime.wall_time;
    List.iter
      (fun (name, v) -> Fmt.pr "  %s = %s@." name (Lang.Value.to_string v))
      (results ())
  end
  else begin
    let t, bytes, results, c = H.run_cell ~cluster ~strategy ~widths a in
    Fmt.pr "simulated run: makespan %.4fs, %.0f bytes moved@." t bytes;
    Fmt.pr "decomposition: %a@." Costmodel.pp_assignment c.Compile.assignment;
    List.iter
      (fun (name, v) ->
        let s = Lang.Value.to_string v in
        let s = if String.length s > 200 then String.sub s 0 200 ^ "..." else s in
        Fmt.pr "  %s = %s@." name s)
      results
  end;
  `Ok ()

(* --- command line --- *)

open Cmdliner

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Log the compiler's phases to stderr.")

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "file"; "f" ] ~docv:"FILE" ~doc:"Compile a PipeLang source file.")

let app_arg =
  Arg.(
    value & opt app_conv Knn
    & info [ "app"; "a" ] ~docv:"APP"
        ~doc:"Bundled application: zbuffer, apix, knn, vmscope or kmeans.")

let config_arg =
  Arg.(
    value & opt string "1-1-1"
    & info [ "config"; "c" ] ~docv:"CONFIG"
        ~doc:"Pipeline configuration, e.g. 1-1-1, 2-2-1 or 4-4-1.")

let strategy_arg =
  Arg.(
    value & opt strategy_conv Compile.Decomp
    & info [ "strategy"; "s" ] ~docv:"STRATEGY"
        ~doc:"Decomposition strategy: decomp or default.")

let cluster_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cluster" ]
        ~docv:"NODE_POWER,VIEW_POWER,BANDWIDTH,LATENCY"
        ~doc:
          "Cluster description: per-node weighted ops/s, view-desktop \
           ops/s, link bytes/s, per-buffer latency seconds.")

let parallel_arg =
  Arg.(
    value & flag
    & info [ "parallel"; "p" ]
        ~doc:"Execute on real domains instead of the simulated cluster.")

(* Run a command body with logging configured and every user-facing
   error rendered cleanly (cmdliner would otherwise report raised
   exceptions as internal errors). *)
let with_logs f =
  Term.(
    const (fun v x ->
        setup_logs v;
        match f x with
        | r -> r
        | exception Lang.Srcloc.Error (loc, msg) ->
            `Error (false, Fmt.str "%a: %s" Lang.Srcloc.pp loc msg)
        | exception Lang.Value.Runtime_error msg ->
            `Error (false, "runtime error: " ^ msg)
        | exception Invalid_argument msg -> `Error (false, msg)
        | exception Sys_error msg -> `Error (false, msg))
    $ verbose_arg)

let inspect_cmd =
  Cmd.v (Cmd.info "inspect" ~doc:"Print boundaries, Gen/Cons and ReqComm sets")
    Term.(ret (with_logs (fun (f, a) -> inspect f a) $ (const (fun f a -> (f, a)) $ file_arg $ app_arg)))

let plan_cmd =
  Cmd.v (Cmd.info "plan" ~doc:"Print the chosen filter decomposition")
    Term.(
      ret
        (with_logs (fun (f, a, c, s, cl) -> plan f a c s cl)
        $ (const (fun f a c s cl -> (f, a, c, s, cl))
          $ file_arg $ app_arg $ config_arg $ strategy_arg $ cluster_arg)))

let emit_cmd =
  Cmd.v (Cmd.info "emit" ~doc:"Print the generated filter code")
    Term.(
      ret
        (with_logs (fun (f, a, c, s, cl) -> emit f a c s cl)
        $ (const (fun f a c s cl -> (f, a, c, s, cl))
          $ file_arg $ app_arg $ config_arg $ strategy_arg $ cluster_arg)))

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Compile and execute the pipeline")
    Term.(
      ret
        (with_logs (fun (f, a, c, s, p, cl) -> run f a c s p cl)
        $ (const (fun f a c s p cl -> (f, a, c, s, p, cl))
          $ file_arg $ app_arg $ config_arg $ strategy_arg $ parallel_arg
          $ cluster_arg)))

let main =
  Cmd.group
    (Cmd.info "cgppc" ~version:"1.0.0"
       ~doc:"compiler for coarse-grained pipelined parallelism")
    [ inspect_cmd; plan_cmd; emit_cmd; run_cmd ]

let () = exit (Cmd.eval main)
