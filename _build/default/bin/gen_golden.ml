(* Regenerate the golden emit files used by test_emit_golden:
     dune exec bin/gen_golden.exe -- <output-dir> *)
open Core
module H = Apps.Harness

let plans =
  [
    ("knn_filters.txt", H.knn_app Apps.Knn.tiny, [| 1; 1; 1; 2 |], 3);
    ( "vmscope_filters.txt",
      H.vmscope_app Apps.Vmscope.tiny,
      [| 1; 1; 3 |],
      3 );
  ]

let plan_of app assignment m =
  let prog = Compile.front_end ~externs_sig:app.H.externs_sig app.H.source in
  let segments = Compile.segment ~prog in
  let rc = Reqcomm.analyze prog segments in
  Codegen.make_plan prog segments rc ~assignment ~m
    ~num_packets:app.H.num_packets ~externs:app.H.externs
    ~runtime_defs:(("num_packets", app.H.num_packets) :: app.H.runtime_defs)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  List.iter
    (fun (file, app, assignment, m) ->
      let plan = plan_of app assignment m in
      let oc = open_out (Filename.concat dir file) in
      output_string oc (Emit.emit_plan plan);
      close_out oc;
      Printf.printf "wrote %s\n" (Filename.concat dir file))
    plans
