test/test_gencons.mli:
