test/test_emit_golden.mli:
