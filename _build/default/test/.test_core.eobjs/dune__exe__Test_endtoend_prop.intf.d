test/test_endtoend_prop.mli:
