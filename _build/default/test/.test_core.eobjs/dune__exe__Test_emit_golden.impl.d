test/test_emit_golden.ml: Alcotest Apps Codegen Compile Core Emit Filename Reqcomm
