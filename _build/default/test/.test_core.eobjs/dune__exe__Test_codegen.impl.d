test/test_codegen.ml: Alcotest Apps Array Ast Astring Bytes Codegen Compile Core Datacutter Emit Hashtbl Interp Lang List Reqcomm Set String Typecheck Value
