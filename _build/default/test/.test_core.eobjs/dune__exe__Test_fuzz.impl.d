test/test_fuzz.ml: Alcotest Apps Array Ast Bytes Gen Lang List Parser QCheck QCheck_alcotest Srcloc String Typecheck
