test/test_gencons.ml: Alcotest Ast Boundary Core Gencons Lang List Parser Printf Section Set String Varset
