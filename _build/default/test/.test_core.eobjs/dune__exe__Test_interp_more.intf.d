test/test_interp_more.mli:
