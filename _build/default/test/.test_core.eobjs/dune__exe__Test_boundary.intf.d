test/test_boundary.mli:
