test/test_reqcomm.ml: Alcotest Array Ast Boundary Core Lang List Parser Printf Reqcomm Set String Varset
