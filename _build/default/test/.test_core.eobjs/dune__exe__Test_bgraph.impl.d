test/test_bgraph.ml: Alcotest Array Ast Bgraph Boundary Core Gencons Hashtbl Lang List Parser Printf QCheck QCheck_alcotest Reqcomm String Varset
