test/test_endtoend_prop.ml: Alcotest Apps Array Buffer Compile Core Costmodel Float Hashtbl Lang List Printf QCheck QCheck_alcotest String
