test/test_decompose.ml: Alcotest Array Core Costmodel Decompose List QCheck QCheck_alcotest Random
