test/test_boundary.ml: Alcotest Ast Boundary Core Interp Lang List Parser Printf Typecheck Value
