test/test_interp_more.ml: Alcotest Apps Ast Astring Interp Lang List Opcount Parser Pretty Printf Typecheck Value
