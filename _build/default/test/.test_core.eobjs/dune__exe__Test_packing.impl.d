test/test_packing.ml: Alcotest Array Ast Boundary Buffer Bytes Core Hashtbl Lang List Objpack Option Packing Parser QCheck QCheck_alcotest Reqcomm Section Tyenv Value
