test/test_bgraph.mli:
