test/test_varset.mli:
