test/test_reqcomm.mli:
