test/test_harness.ml: Alcotest Apps Array Boundary Compile Core Costmodel Datacutter List Printf String
