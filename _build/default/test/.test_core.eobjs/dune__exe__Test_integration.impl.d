test/test_integration.ml: Alcotest Apps Array Boundary Compile Core Datacutter Lang List Printf String
