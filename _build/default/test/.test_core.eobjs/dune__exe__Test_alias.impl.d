test/test_alias.ml: Alcotest Alias Ast Astring Compile Core Costmodel Gencons Interp Lang List Parser Printf Srcloc Typecheck Value Varset
