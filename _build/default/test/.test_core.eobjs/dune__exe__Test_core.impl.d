test/test_core.ml: Alcotest
