test/test_section.mli:
