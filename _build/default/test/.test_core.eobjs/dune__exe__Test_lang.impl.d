test/test_lang.ml: Alcotest Ast Astring Hashtbl Interp Lang Lexer List Opcount Parser Pretty Printf QCheck QCheck_alcotest Srcloc String Token Typecheck Value
