test/test_varset.ml: Alcotest Core Gen List QCheck QCheck_alcotest Section Varset
