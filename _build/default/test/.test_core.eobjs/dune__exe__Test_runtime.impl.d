test/test_runtime.ml: Alcotest Array Bytes Datacutter Filter Int64 List Mutex Par_runtime Sim_runtime String Topology
