test/test_section.ml: Alcotest Core List QCheck QCheck_alcotest Section
