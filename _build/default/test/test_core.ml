let () =
  Alcotest.run "repro"
    [ ("placeholder", [ Alcotest.test_case "true" `Quick (fun () -> ()) ]) ]
