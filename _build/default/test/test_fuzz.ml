(* Robustness fuzzing: the front end must fail only through its own
   located error exception — never with Assert_failure, Match_failure,
   stack overflow or any other leak — on arbitrary input. *)

module A = Alcotest
open Lang

let well_behaved src =
  match Parser.parse src with
  | (_ : Ast.program) -> true
  | exception Srcloc.Error _ -> true
  | exception _ -> false

(* arbitrary bytes *)
let prop_parse_random_bytes =
  QCheck.Test.make ~name:"parser survives random bytes" ~count:500
    QCheck.(string_gen Gen.printable)
    well_behaved

(* token soup: random sequences of valid lexemes are far more likely to
   reach deep parser states than raw bytes *)
let lexemes =
  [|
    "class"; "implements"; "Reducinterface"; "int"; "float"; "bool"; "void";
    "List"; "Rectdomain"; "if"; "else"; "for"; "while"; "foreach"; "in";
    "where"; "pipelined"; "return"; "new"; "runtime_define"; "break";
    "continue"; "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "."; ":"; "="; "+=";
    "+"; "-"; "*"; "/"; "%"; "<"; "<="; ">"; ">="; "=="; "!="; "&&"; "||";
    "!"; "x"; "y"; "foo"; "T"; "0"; "1"; "3.5"; "true"; "false"; "\"s\"";
  |]

let gen_token_soup =
  QCheck.Gen.(
    map
      (fun idxs ->
        String.concat " "
          (List.map (fun i -> lexemes.(abs i mod Array.length lexemes)) idxs))
      (list_size (0 -- 60) small_int))

let prop_parse_token_soup =
  QCheck.Test.make ~name:"parser survives token soup" ~count:1000
    (QCheck.make gen_token_soup ~print:(fun s -> s))
    well_behaved

(* mutations of a valid program: deletions and swaps of characters *)
let base_program = Apps.Knn.source

let gen_mutation =
  QCheck.Gen.(
    let n = String.length base_program in
    map2
      (fun cuts swaps ->
        let b = Bytes.of_string base_program in
        List.iter
          (fun (i, j) ->
            let i = abs i mod n and j = abs j mod n in
            let t = Bytes.get b i in
            Bytes.set b i (Bytes.get b j);
            Bytes.set b j t)
          swaps;
        let s = Bytes.to_string b in
        (* also chop a random suffix *)
        match cuts with
        | [] -> s
        | c :: _ -> String.sub s 0 (abs c mod n))
      (list_size (0 -- 1) small_int)
      (list_size (0 -- 8) (pair small_int small_int)))

let prop_parse_mutations =
  QCheck.Test.make ~name:"parser survives mutated programs" ~count:500
    (QCheck.make gen_mutation ~print:(fun s -> String.sub s 0 (min 200 (String.length s))))
    well_behaved

(* the type checker, too, must only raise located errors on anything the
   parser accepts *)
let prop_typecheck_well_behaved =
  QCheck.Test.make ~name:"typechecker raises only located errors" ~count:500
    (QCheck.make gen_token_soup ~print:(fun s -> s))
    (fun src ->
      match Parser.parse src with
      | exception Srcloc.Error _ -> true
      | prog -> (
          match Typecheck.check prog with
          | () -> true
          | exception Srcloc.Error _ -> true
          | exception _ -> false))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_parse_random_bytes;
      prop_parse_token_soup;
      prop_parse_mutations;
      prop_typecheck_well_behaved;
    ]

let () = Alcotest.run "fuzz" [ ("front-end fuzz", suite) ]
