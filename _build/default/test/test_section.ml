(* Tests for rectilinear sections with symbolic bounds. *)

module A = Alcotest
open Core

let range a b = Section.Range (Section.Bconst a, Section.Bconst b)
let srange lo hi = Section.Range (lo, hi)

let test_covers_const () =
  A.(check bool) "covers" true (Section.covers ~outer:(range 0 10) ~inner:(range 2 5));
  A.(check bool) "not covers" false (Section.covers ~outer:(range 2 5) ~inner:(range 0 10));
  A.(check bool) "whole covers all" true (Section.covers ~outer:Section.Whole ~inner:(range 0 10));
  A.(check bool) "range does not cover whole" false
    (Section.covers ~outer:(range 0 10) ~inner:Section.Whole)

let test_covers_symbolic () =
  let n = Section.Bsym "n" in
  A.(check bool) "same sym" true
    (Section.covers ~outer:(srange (Section.Bconst 0) n)
       ~inner:(srange (Section.Bconst 0) n));
  A.(check bool) "offset below" true
    (Section.covers ~outer:(srange (Section.Bconst 0) n)
       ~inner:(srange (Section.Bconst 0) (Section.Bsym_off ("n", -1))));
  A.(check bool) "offset above not covered" false
    (Section.covers ~outer:(srange (Section.Bconst 0) n)
       ~inner:(srange (Section.Bconst 0) (Section.Bsym_off ("n", 1))));
  A.(check bool) "different syms incomparable" false
    (Section.covers ~outer:(srange (Section.Bconst 0) (Section.Bsym "m"))
       ~inner:(srange (Section.Bconst 0) n))

let test_union_overapprox () =
  (* union always contains both arguments *)
  let u = Section.union (range 0 5) (range 3 10) in
  A.(check bool) "contains a" true (Section.covers ~outer:u ~inner:(range 0 5));
  A.(check bool) "contains b" true (Section.covers ~outer:u ~inner:(range 3 10));
  let u2 = Section.union (range 0 5) (srange (Section.Bsym "n") (Section.Bsym "m")) in
  A.(check bool) "incomparable -> whole" true (u2 = Section.Whole)

let test_subtract_conservative () =
  (* removal only when provably covered *)
  A.(check bool) "covered removed" true (Section.subtract (range 2 4) (range 0 10) = None);
  A.(check bool) "partial kept" true
    (Section.subtract (range 0 10) (range 2 4) = Some (range 0 10));
  A.(check bool) "whole minus range kept" true
    (Section.subtract Section.Whole (range 0 10) = Some Section.Whole);
  A.(check bool) "anything minus whole removed" true
    (Section.subtract (range 5 6) Section.Whole = None)

let test_disjoint () =
  A.(check bool) "disjoint" true (Section.disjoint (range 0 5) (range 5 10));
  A.(check bool) "overlap" false (Section.disjoint (range 0 6) (range 5 10));
  A.(check bool) "whole never disjoint" false (Section.disjoint Section.Whole (range 0 1))

let test_to_string () =
  A.(check string) "const" "[0 : 10]" (Section.to_string (range 0 10));
  A.(check string) "sym" "[n : n+1]"
    (Section.to_string (srange (Section.Bsym "n") (Section.Bsym_off ("n", 1))));
  A.(check string) "whole" "[*]" (Section.to_string Section.Whole)

(* qcheck: union is an upper bound; subtract sound *)
let gen_bound =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Section.Bconst (abs n mod 20)) small_int;
        map (fun n -> Section.Bsym ("s" ^ string_of_int (abs n mod 3))) small_int;
        map2
          (fun n k -> Section.Bsym_off ("s" ^ string_of_int (abs n mod 3), (k mod 5) - 2))
          small_int small_int;
      ])

let gen_section =
  QCheck.Gen.(
    frequency
      [
        (1, return Section.Whole);
        (5, map2 (fun a b -> Section.Range (a, b)) gen_bound gen_bound);
      ])

let arb_section = QCheck.make gen_section ~print:Section.to_string

let prop_union_upper_bound =
  QCheck.Test.make ~name:"union covers both operands" ~count:500
    (QCheck.pair arb_section arb_section)
    (fun (a, b) ->
      let u = Section.union a b in
      Section.covers ~outer:u ~inner:a && Section.covers ~outer:u ~inner:b)

let prop_subtract_sound =
  QCheck.Test.make ~name:"subtract removes only when covered" ~count:500
    (QCheck.pair arb_section arb_section)
    (fun (a, b) ->
      match Section.subtract a b with
      | None -> Section.covers ~outer:b ~inner:a
      | Some r -> Section.equal r a)

let prop_covers_transitive =
  QCheck.Test.make ~name:"covers is transitive" ~count:500
    (QCheck.triple arb_section arb_section arb_section)
    (fun (a, b, c) ->
      if Section.covers ~outer:a ~inner:b && Section.covers ~outer:b ~inner:c
      then Section.covers ~outer:a ~inner:c
      else true)

let suite =
  [
    ("covers const", `Quick, test_covers_const);
    ("covers symbolic", `Quick, test_covers_symbolic);
    ("union over-approximates", `Quick, test_union_overapprox);
    ("subtract conservative", `Quick, test_subtract_conservative);
    ("disjoint", `Quick, test_disjoint);
    ("to_string", `Quick, test_to_string);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_union_upper_bound; prop_subtract_sound; prop_covers_transitive ]

let () = Alcotest.run "section" [ ("section", suite) ]
