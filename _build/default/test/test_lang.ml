(* Tests for the PipeLang front end: lexer, parser, pretty-printer
   round-trips, type checker, and interpreter. *)

module A = Alcotest
open Lang

let parse_ok src = Parser.parse ~file:"test" src

let typecheck_ok ?externs src =
  let prog = parse_ok src in
  Typecheck.check ?externs prog;
  prog

(* A small but representative program: a reduction class, a helper
   function, a global reduction variable, and a pipelined loop with two
   foreach loops (the second with a where clause). *)
let sum_src =
  {|
class Acc implements Reducinterface {
  float total;
  int count;
  void merge(Acc other) {
    this.total = this.total + other.total;
    this.count = this.count + other.count;
  }
}

class Point {
  float x;
  float y;
  bool keep;
}

float dist2(Point a) {
  return a.x * a.x + a.y * a.y;
}

Acc result = new Acc();

pipelined (p in [0 : runtime_define num_packets]) {
  List<Point> pts = read_points(p);
  foreach (q in pts) {
    q.keep = dist2(q) < 1.0;
  }
  Acc local = new Acc();
  foreach (q in pts where q.keep) {
    local.total += q.x;
    local.count += 1;
  }
  result.merge(local);
}
|}

let read_points_extern n_per_packet : (string * Interp.extern_fn) =
  ( "read_points",
    fun _ctx args ->
      let p = Value.as_int (List.hd args) in
      let l = Value.Vec.create () in
      for i = 0 to n_per_packet - 1 do
        let fields = Hashtbl.create 4 in
        let x = float_of_int ((p * n_per_packet) + i) /. 100.0 in
        Hashtbl.replace fields "x" (Value.Vfloat x);
        Hashtbl.replace fields "y" (Value.Vfloat 0.0);
        Hashtbl.replace fields "keep" (Value.Vbool false);
        Value.Vec.push l (Value.Vobject { ocls = "Point"; ofields = fields })
      done;
      Value.Vlist l )

let externs_sig =
  [
    Typecheck.
      {
        ex_name = "read_points";
        ex_params = [ Ast.Tint ];
        ex_ret = Ast.Tlist (Ast.Tclass "Point");
      };
  ]

(* --- lexer --- *)

let test_lex_simple () =
  let toks = Lexer.tokenize "foreach (x in [0 : 10]) { x += 1; }" in
  let kinds = List.map (fun l -> l.Lexer.tok) toks in
  A.(check int) "token count" 17 (List.length kinds);
  A.(check bool) "starts with foreach" true (List.hd kinds = Token.KW_FOREACH);
  A.(check bool)
    "ends with EOF" true
    (List.nth kinds (List.length kinds - 1) = Token.EOF)

let test_lex_comments () =
  let toks =
    Lexer.tokenize "a // line comment\n /* block \n comment */ b"
  in
  let idents =
    List.filter_map
      (fun l -> match l.Lexer.tok with Token.IDENT s -> Some s | _ -> None)
      toks
  in
  A.(check (list string)) "comments skipped" [ "a"; "b" ] idents

let test_lex_numbers () =
  let toks = Lexer.tokenize "42 3.5 1e3 2.5e-2 7" in
  let nums =
    List.filter_map
      (fun l ->
        match l.Lexer.tok with
        | Token.INT n -> Some (float_of_int n)
        | Token.FLOAT f -> Some f
        | _ -> None)
      toks
  in
  A.(check (list (float 1e-9))) "numbers" [ 42.; 3.5; 1000.; 0.025; 7. ] nums

let test_lex_operators () =
  let toks = Lexer.tokenize "a += b == c && d <= e != f || !g" in
  let has t = List.exists (fun l -> l.Lexer.tok = t) toks in
  A.(check bool) "+=" true (has Token.PLUS_ASSIGN);
  A.(check bool) "==" true (has Token.EQ);
  A.(check bool) "&&" true (has Token.AND);
  A.(check bool) "<=" true (has Token.LE);
  A.(check bool) "!=" true (has Token.NE);
  A.(check bool) "||" true (has Token.OR);
  A.(check bool) "!" true (has Token.NOT)

let test_lex_string_escapes () =
  let toks = Lexer.tokenize {|"a\nb\t\"q\""|} in
  match (List.hd toks).Lexer.tok with
  | Token.STRING s -> A.(check string) "escapes" "a\nb\t\"q\"" s
  | _ -> A.fail "expected string token"

let test_lex_error_loc () =
  match Lexer.tokenize "a\nb\n  @" with
  | exception Srcloc.Error (loc, _) ->
      A.(check int) "line" 3 loc.Srcloc.line;
      A.(check int) "col" 2 loc.Srcloc.col
  | _ -> A.fail "expected lex error"

(* --- parser --- *)

let test_parse_program () =
  let prog = parse_ok sum_src in
  A.(check int) "classes" 2 (List.length prog.Ast.classes);
  A.(check int) "funcs" 1 (List.length prog.Ast.funcs);
  A.(check int) "globals" 1 (List.length prog.Ast.globals);
  A.(check int) "pipeline stmts" 5 (List.length prog.Ast.pipeline.Ast.pd_body)

let test_parse_precedence () =
  let e = Parser.parse_expr_string "1 + 2 * 3 < 4 && true || false" in
  (* ((1 + (2*3)) < 4 && true) || false *)
  match e.Ast.e with
  | Ast.Ebinop (Ast.Or, lhs, _) -> (
      match lhs.Ast.e with
      | Ast.Ebinop (Ast.And, cmp, _) -> (
          match cmp.Ast.e with
          | Ast.Ebinop (Ast.Lt, add, _) -> (
              match add.Ast.e with
              | Ast.Ebinop (Ast.Add, _, mul) -> (
                  match mul.Ast.e with
                  | Ast.Ebinop (Ast.Mul, _, _) -> ()
                  | _ -> A.fail "expected * under +")
              | _ -> A.fail "expected + under <")
          | _ -> A.fail "expected < under &&")
      | _ -> A.fail "expected && under ||")
  | _ -> A.fail "expected || at top"

let test_parse_postfix_chain () =
  let e = Parser.parse_expr_string "a.b[3].c(x, y).d" in
  A.(check string) "printed" "a.b[3].c(x, y).d" (Pretty.expr_to_string e)

let test_parse_foreach_where () =
  let stmts = Parser.parse_stmts_string "foreach (q in pts where q.keep) { }" in
  match (List.hd stmts).Ast.s with
  | Ast.Sforeach { fe_where = Some _; fe_var = "q"; _ } -> ()
  | _ -> A.fail "expected foreach-where"

let test_parse_error_reports_location () =
  match Parser.parse ~file:"f" "class X {" with
  | exception Srcloc.Error (_, msg) ->
      A.(check bool) "mentions parse" true
        (Astring.String.is_infix ~affix:"expected" msg
        || String.length msg > 0)
  | _ -> A.fail "expected parse error"

let test_roundtrip_program () =
  let prog = parse_ok sum_src in
  let printed = Pretty.program_to_string prog in
  let reparsed = Parser.parse ~file:"printed" printed in
  let printed2 = Pretty.program_to_string reparsed in
  A.(check string) "pretty round-trip fixpoint" printed printed2

(* qcheck: random expression round-trips through the pretty-printer *)
let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Ast.mk_expr (Ast.Eint (abs n))) small_int;
        map (fun v -> Ast.mk_expr (Ast.Evar ("v" ^ string_of_int (abs v mod 5)))) small_int;
        return (Ast.mk_expr (Ast.Ebool true));
      ]
  in
  let node self n =
    if n <= 0 then leaf
    else
      oneof
        [
          leaf;
          map2
            (fun a b -> Ast.mk_expr (Ast.Ebinop (Ast.Add, a, b)))
            (self (n / 2)) (self (n / 2));
          map2
            (fun a b -> Ast.mk_expr (Ast.Ebinop (Ast.Mul, a, b)))
            (self (n / 2)) (self (n / 2));
          map2
            (fun a b -> Ast.mk_expr (Ast.Ebinop (Ast.Lt, a, b)))
            (self (n / 2)) (self (n / 2));
          map (fun a -> Ast.mk_expr (Ast.Eunop (Ast.Neg, a))) (self (n - 1));
          map (fun a -> Ast.mk_expr (Ast.Efield (a, "f"))) (self (n - 1));
        ]
  in
  sized (fix node)

let rec expr_equal (a : Ast.expr) (b : Ast.expr) =
  match (a.Ast.e, b.Ast.e) with
  | Ast.Eint x, Ast.Eint y -> x = y
  | Ast.Ebool x, Ast.Ebool y -> x = y
  | Ast.Evar x, Ast.Evar y -> x = y
  | Ast.Ebinop (o1, a1, b1), Ast.Ebinop (o2, a2, b2) ->
      o1 = o2 && expr_equal a1 a2 && expr_equal b1 b2
  | Ast.Eunop (o1, a1), Ast.Eunop (o2, a2) -> o1 = o2 && expr_equal a1 a2
  | Ast.Efield (a1, f1), Ast.Efield (a2, f2) -> f1 = f2 && expr_equal a1 a2
  | _ -> false

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"pretty-print/parse round-trip on expressions"
    ~count:200
    (QCheck.make gen_expr ~print:Pretty.expr_to_string)
    (fun e ->
      let printed = Pretty.expr_to_string e in
      let reparsed = Parser.parse_expr_string printed in
      expr_equal e reparsed)

(* --- typechecker --- *)

let test_typecheck_ok () = ignore (typecheck_ok ~externs:externs_sig sum_src)

let expect_type_error ?externs src frag =
  match typecheck_ok ?externs src with
  | exception Srcloc.Error (_, msg) ->
      if not (Astring.String.is_infix ~affix:frag msg) then
        A.failf "error %S does not mention %S" msg frag
  | _ -> A.failf "expected type error mentioning %S" frag

let wrap_pipeline body =
  Printf.sprintf "pipelined (p in [0 : 2]) { %s }" body

let test_typecheck_unbound () =
  expect_type_error (wrap_pipeline "x = 1;") "unbound variable x"

let test_typecheck_bad_assign () =
  expect_type_error (wrap_pipeline "int x = 0; x = 1.5;") "cannot assign"

let test_typecheck_int_to_float_ok () =
  ignore (typecheck_ok (wrap_pipeline "float x = 3; x = x + 1;"))

let test_typecheck_if_not_bool () =
  expect_type_error (wrap_pipeline "if (1) { }") "if condition not bool"

let test_typecheck_bad_field () =
  expect_type_error
    ("class C { int a; } " ^ wrap_pipeline "C c = new C(); int z = c.b;")
    "no field b"

let test_typecheck_reduc_needs_merge () =
  expect_type_error
    ("class R implements Reducinterface { int a; } "
    ^ wrap_pipeline "int x = 0;")
    "must define 'void merge"

let test_typecheck_foreach_elem_type () =
  ignore
    (typecheck_ok
       (wrap_pipeline
          "List<float> xs = new List<float>(); foreach (x in xs) { float y = \
           x + 1.0; }"))

let test_typecheck_where_not_bool () =
  expect_type_error
    (wrap_pipeline
       "List<int> xs = new List<int>(); foreach (x in xs where x + 1) { }")
    "where clause not bool"

let test_typecheck_dup_class () =
  expect_type_error
    ("class C { int a; } class C { int b; } " ^ wrap_pipeline "int x = 0;")
    "duplicate class"

let test_typecheck_call_arity () =
  expect_type_error
    ("int f(int a, int b) { return a + b; } " ^ wrap_pipeline "int x = f(1);")
    "expects 2 argument"

let test_typecheck_method_unknown () =
  expect_type_error
    ("class C { int a; } " ^ wrap_pipeline "C c = new C(); c.run();")
    "no method run"

(* --- interpreter --- *)

let run_with_externs ?(num_packets = 4) ?(per_packet = 10) src =
  let prog = parse_ok src in
  Typecheck.check ~externs:externs_sig prog;
  let ctx =
    Interp.create_ctx
      ~externs:[ read_points_extern per_packet ]
      ~runtime_defs:[ ("num_packets", num_packets) ]
      prog
  in
  (ctx, Interp.run_reference ctx)

let test_interp_reference_run () =
  let _ctx, genv = run_with_externs sum_src in
  match Interp.global_value genv "result" with
  | Value.Vobject o ->
      (* points are k/100 for k = 0..39; keep those with x^2 < 1, i.e. all
         40 (max 0.39^2 = 0.15 < 1) *)
      A.(check int) "count" 40 (Value.as_int (Value.field o "count"));
      let expected = List.init 40 (fun k -> float_of_int k /. 100.) in
      let total = List.fold_left ( +. ) 0. expected in
      A.(check (float 1e-9)) "total" total (Value.as_float (Value.field o "total"))
  | v -> A.failf "expected object, got %s" (Value.type_name v)

let test_interp_where_filters () =
  let src =
    {|
class Acc implements Reducinterface {
  int n;
  void merge(Acc other) { this.n = this.n + other.n; }
}
Acc result = new Acc();
pipelined (p in [0 : 3]) {
  Acc local = new Acc();
  foreach (i in [0 : 10] where i % 2 == 0) {
    local.n += 1;
  }
  result.merge(local);
}
|}
  in
  let prog = typecheck_ok src in
  let ctx = Interp.create_ctx prog in
  let genv = Interp.run_reference ctx in
  match Interp.global_value genv "result" with
  | Value.Vobject o -> A.(check int) "n" 15 (Value.as_int (Value.field o "n"))
  | _ -> A.fail "expected object"

let test_interp_arrays_and_for () =
  let src =
    {|
class Acc implements Reducinterface {
  int n;
  void merge(Acc other) { this.n = this.n + other.n; }
}
Acc result = new Acc();
pipelined (p in [0 : 1]) {
  int[] a = new int[5];
  for (int i = 0; i < 5; i = i + 1) { a[i] = i * i; }
  Acc local = new Acc();
  foreach (i in [0 : 5]) { local.n += a[i]; }
  result.merge(local);
}
|}
  in
  let prog = typecheck_ok src in
  let ctx = Interp.create_ctx prog in
  let genv = Interp.run_reference ctx in
  match Interp.global_value genv "result" with
  | Value.Vobject o ->
      A.(check int) "sum of squares" 30 (Value.as_int (Value.field o "n"))
  | _ -> A.fail "expected object"

let test_interp_function_calls () =
  let src =
    {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
class Acc implements Reducinterface {
  int n;
  void merge(Acc other) { this.n = this.n + other.n; }
}
Acc result = new Acc();
pipelined (p in [0 : 1]) {
  Acc local = new Acc();
  local.n = fib(10);
  result.merge(local);
}
|}
  in
  let prog = typecheck_ok src in
  let ctx = Interp.create_ctx prog in
  let genv = Interp.run_reference ctx in
  match Interp.global_value genv "result" with
  | Value.Vobject o -> A.(check int) "fib 10" 55 (Value.as_int (Value.field o "n"))
  | _ -> A.fail "expected object"

let test_else_if_chain () =
  let src =
    {|
class Acc implements Reducinterface {
  int n;
  void merge(Acc other) { this.n = this.n + other.n; }
}
Acc result = new Acc();
pipelined (p in [0 : 6]) {
  Acc local = new Acc();
  if (p < 2) {
    local.n = 1;
  } else if (p < 4) {
    local.n = 10;
  } else {
    local.n = 100;
  }
  result.merge(local);
}
|}
  in
  let prog = typecheck_ok src in
  let ctx = Interp.create_ctx prog in
  let genv = Interp.run_reference ctx in
  match Interp.global_value genv "result" with
  | Value.Vobject o ->
      A.(check int) "2*1 + 2*10 + 2*100" 222 (Value.as_int (Value.field o "n"))
  | _ -> A.fail "expected object"

let test_interp_break_continue () =
  let src =
    {|
class Acc implements Reducinterface {
  int n;
  void merge(Acc other) { this.n = this.n + other.n; }
}
Acc result = new Acc();
pipelined (p in [0 : 1]) {
  Acc local = new Acc();
  int i = 0;
  while (true) {
    i = i + 1;
    if (i > 100) { break; }
    if (i % 2 == 0) { continue; }
    local.n += 1;
  }
  result.merge(local);
}
|}
  in
  let prog = typecheck_ok src in
  let ctx = Interp.create_ctx prog in
  let genv = Interp.run_reference ctx in
  match Interp.global_value genv "result" with
  | Value.Vobject o -> A.(check int) "odd count" 50 (Value.as_int (Value.field o "n"))
  | _ -> A.fail "expected object"

let test_interp_counts_ops () =
  let ctx, _ = run_with_externs sum_src in
  let c = ctx.Interp.counter in
  A.(check bool) "float ops counted" true (c.Opcount.float_ops > 0);
  A.(check bool) "branches counted" true (c.Opcount.branch_ops > 0);
  A.(check bool) "calls counted" true (c.Opcount.calls > 0)

let test_interp_division_by_zero () =
  let src = wrap_pipeline "int x = 1; int y = x / (x - x);" in
  let prog = typecheck_ok src in
  let ctx = Interp.create_ctx prog in
  match Interp.run_reference ctx with
  | exception Value.Runtime_error msg ->
      A.(check bool) "mentions zero" true
        (Astring.String.is_infix ~affix:"zero" msg)
  | _ -> A.fail "expected runtime error"

let test_interp_array_bounds () =
  let src = wrap_pipeline "int[] a = new int[2]; int x = a[5];" in
  let prog = typecheck_ok src in
  let ctx = Interp.create_ctx prog in
  match Interp.run_reference ctx with
  | exception Value.Runtime_error msg ->
      A.(check bool) "mentions bounds" true
        (Astring.String.is_infix ~affix:"bounds" msg)
  | _ -> A.fail "expected runtime error"

let test_value_deep_copy_isolates () =
  let fields = Hashtbl.create 4 in
  Hashtbl.replace fields "x" (Value.Vint 1);
  let obj = Value.Vobject { ocls = "C"; ofields = fields } in
  let copy = Value.deep_copy obj in
  (match obj with
  | Value.Vobject o -> Value.set_field o "x" (Value.Vint 99)
  | _ -> ());
  match copy with
  | Value.Vobject o -> A.(check int) "copy unaffected" 1 (Value.as_int (Value.field o "x"))
  | _ -> A.fail "expected object"

let prop_vec_push_get =
  QCheck.Test.make ~name:"Vec push/get agree with list semantics" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Value.Vec.create () in
      List.iter (fun x -> Value.Vec.push v x) xs;
      Value.Vec.to_list v = xs
      && Value.Vec.length v = List.length xs
      && List.for_all2 ( = ) (List.mapi (fun i _ -> Value.Vec.get v i) xs) xs)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_expr_roundtrip; prop_vec_push_get ]

let suite : unit Alcotest.test_case list =
  [
    ("lex simple", `Quick, test_lex_simple);
    ("lex comments", `Quick, test_lex_comments);
    ("lex numbers", `Quick, test_lex_numbers);
    ("lex operators", `Quick, test_lex_operators);
    ("lex string escapes", `Quick, test_lex_string_escapes);
    ("lex error location", `Quick, test_lex_error_loc);
    ("parse program", `Quick, test_parse_program);
    ("parse precedence", `Quick, test_parse_precedence);
    ("parse postfix chain", `Quick, test_parse_postfix_chain);
    ("parse foreach where", `Quick, test_parse_foreach_where);
    ("parse error location", `Quick, test_parse_error_reports_location);
    ("pretty round-trip", `Quick, test_roundtrip_program);
    ("typecheck ok", `Quick, test_typecheck_ok);
    ("typecheck unbound", `Quick, test_typecheck_unbound);
    ("typecheck bad assign", `Quick, test_typecheck_bad_assign);
    ("typecheck int->float ok", `Quick, test_typecheck_int_to_float_ok);
    ("typecheck if not bool", `Quick, test_typecheck_if_not_bool);
    ("typecheck bad field", `Quick, test_typecheck_bad_field);
    ("typecheck reduc needs merge", `Quick, test_typecheck_reduc_needs_merge);
    ("typecheck foreach elem", `Quick, test_typecheck_foreach_elem_type);
    ("typecheck where not bool", `Quick, test_typecheck_where_not_bool);
    ("typecheck dup class", `Quick, test_typecheck_dup_class);
    ("typecheck call arity", `Quick, test_typecheck_call_arity);
    ("typecheck unknown method", `Quick, test_typecheck_method_unknown);
    ("interp reference run", `Quick, test_interp_reference_run);
    ("interp where filters", `Quick, test_interp_where_filters);
    ("interp arrays and for", `Quick, test_interp_arrays_and_for);
    ("interp function calls", `Quick, test_interp_function_calls);
    ("else-if chain", `Quick, test_else_if_chain);
    ("interp break/continue", `Quick, test_interp_break_continue);
    ("interp counts ops", `Quick, test_interp_counts_ops);
    ("interp division by zero", `Quick, test_interp_division_by_zero);
    ("interp array bounds", `Quick, test_interp_array_bounds);
    ("value deep copy isolates", `Quick, test_value_deep_copy_isolates);
  ]
  @ qsuite

let () = Alcotest.run "lang" [ ("front-end", suite) ]
