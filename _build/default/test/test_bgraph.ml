(* Tests for the candidate filter boundary graph (§4.1): construction,
   flow paths, and ReqComm over the DAG. *)

module A = Alcotest
open Core
open Lang

let prog_of body =
  Parser.parse
    (Printf.sprintf
       {|
class T { float a; float b; bool keep; }
class R implements Reducinterface {
  float x;
  void merge(R other) { this.x = this.x + other.x; }
}
R acc = new R();
pipelined (p in [0 : 4]) { %s }
|}
       body)

let graph_of body =
  let prog = prog_of body in
  (prog, Bgraph.build prog.Ast.pipeline.Ast.pd_body)

let chain_body =
  "List<T> ts = read_ts(p); R local = new R(); foreach (t in ts) { local.x \
   += t.a; } acc.merge(local);"

let branch_body =
  {|
  List<T> ts = read_ts(p);
  R local = new R();
  if (p % 2 == 0) {
    foreach (t in ts) { local.x += t.a; }
  } else {
    foreach (t in ts) { local.x += t.b; }
  }
  acc.merge(local);
|}

let test_chain_is_chain () =
  let _, g = graph_of chain_body in
  A.(check bool) "chain" true (Bgraph.is_chain g);
  A.(check int) "one flow path" 1 (List.length (Bgraph.flow_paths g));
  (* read(+decl) | foreach | merge *)
  A.(check int) "three edges" 3 (List.length g.Bgraph.edges)

let test_branch_forks () =
  let _, g = graph_of branch_body in
  A.(check bool) "not a chain" false (Bgraph.is_chain g);
  A.(check int) "two flow paths" 2 (List.length (Bgraph.flow_paths g))

let test_flow_paths_start_to_end () =
  let _, g = graph_of branch_body in
  List.iter
    (fun path ->
      A.(check int) "starts at start" g.Bgraph.start (List.hd path).Bgraph.e_src;
      A.(check int) "ends at end" g.Bgraph.stop
        (List.nth path (List.length path - 1)).Bgraph.e_dst;
      (* consecutive edges connect *)
      ignore
        (List.fold_left
           (fun prev (e : Bgraph.edge) ->
             (match prev with
             | Some (p : Bgraph.edge) ->
                 A.(check int) "connected" p.Bgraph.e_dst e.Bgraph.e_src
             | None -> ());
             Some e)
           None path))
    (Bgraph.flow_paths g)

let test_atomic_conditional_stays_chain () =
  (* a conditional without boundary-worthy statements stays atomic *)
  let _, g =
    graph_of
      "List<T> ts = read_ts(p); int n = 0; if (p > 0) { n = 1; } R local = \
       new R(); foreach (t in ts) { local.x += t.a; } acc.merge(local);"
  in
  A.(check bool) "chain" true (Bgraph.is_chain g)

let test_reqcomm_union_at_fork () =
  let prog, g = graph_of branch_body in
  let r = Bgraph.reqcomm prog g in
  (* at the node entering the branch (the fork), both branches' needs are
     present: t.a for the then-branch, t.b for the else-branch *)
  let fork =
    (* the fork node is the destination of the edge carrying the read *)
    let first = List.hd (Bgraph.out_edges g g.Bgraph.start) in
    first.Bgraph.e_dst
  in
  A.(check bool) "ts.a needed" true
    (Varset.mem (Varset.ElemField ("ts", "a")) r.(fork));
  A.(check bool) "ts.b needed" true
    (Varset.mem (Varset.ElemField ("ts", "b")) r.(fork));
  (* nothing remains at the end node *)
  A.(check bool) "end empty" true (Varset.is_empty r.(g.Bgraph.stop))

let test_reqcomm_chain_matches_linear_analysis () =
  (* on a chain the graph propagation must agree with the linear one *)
  let prog, g = graph_of chain_body in
  let r = Bgraph.reqcomm prog g in
  let segments = Boundary.segments_of_body prog.Ast.pipeline.Ast.pd_body in
  let rc = Reqcomm.analyze prog segments in
  (* walk the unique flow path: node entering edge k corresponds to
     boundary k.  ReqComm excludes globals; the graph version keeps them,
     so compare only the non-global items. *)
  let path = List.hd (Bgraph.flow_paths g) in
  let reduc = Reqcomm.reduction_globals prog in
  let strip vs =
    Varset.filter
      (fun item -> not (Reqcomm.S.mem (Reqcomm.item_base item) reduc))
      vs
  in
  List.iteri
    (fun k (e : Bgraph.edge) ->
      if k > 0 then
        A.(check bool)
          (Printf.sprintf "boundary %d agrees" k)
          true
          (Varset.equal (strip r.(e.Bgraph.e_src)) (Reqcomm.reqcomm_into rc k)))
    path

let test_nested_branch () =
  let _, g =
    graph_of
      {|
  List<T> ts = read_ts(p);
  R local = new R();
  if (p > 1) {
    foreach (t in ts) { local.x += t.a; }
    if (p > 2) {
      foreach (t in ts) { local.x += t.b; }
    }
  }
  acc.merge(local);
|}
  in
  (* outer then-branch itself forks: 2 inner paths + the outer else *)
  A.(check int) "three flow paths" 3 (List.length (Bgraph.flow_paths g))

(* --- property: per-path linear propagation is covered by the graph --- *)

(* random nested structure of foreach segments and branches *)
type shape = Leaf of int | Seq of shape list | Branch of shape * shape

let rec shape_to_body = function
  | Leaf k ->
      Printf.sprintf "foreach (t in ts) { local.x += t.%s; }"
        (if k mod 2 = 0 then "a" else "b")
  | Seq parts -> String.concat "\n" (List.map shape_to_body parts)
  | Branch (th, el) ->
      Printf.sprintf "if (p %% 2 == 0) {\n%s\n} else {\n%s\n}"
        (shape_to_body th) (shape_to_body el)

let rec count_paths = function
  | Leaf _ -> 1
  | Seq parts -> List.fold_left (fun acc s -> acc * count_paths s) 1 parts
  | Branch (a, b) -> count_paths a + count_paths b

let gen_shape =
  QCheck.Gen.(
    fix
      (fun self n ->
        if n <= 0 then map (fun k -> Leaf k) small_int
        else
          frequency
            [
              (2, map (fun k -> Leaf k) small_int);
              ( 2,
                map (fun parts -> Seq parts)
                  (list_size (1 -- 3) (self (n - 1))) );
              (1, map2 (fun a b -> Branch (a, b)) (self (n - 1)) (self (n - 1)));
            ])
      2)

let rec shape_print = function
  | Leaf k -> Printf.sprintf "L%d" k
  | Seq parts -> "(" ^ String.concat ";" (List.map shape_print parts) ^ ")"
  | Branch (a, b) -> "[" ^ shape_print a ^ "|" ^ shape_print b ^ "]"

let prop_flow_path_count =
  QCheck.Test.make ~name:"flow path count matches structure" ~count:100
    (QCheck.make gen_shape ~print:shape_print)
    (fun shape ->
      let body =
        Printf.sprintf
          "List<T> ts = read_ts(p); R local = new R();\n%s\nacc.merge(local);"
          (shape_to_body shape)
      in
      let _, g = graph_of body in
      List.length (Bgraph.flow_paths g) = count_paths shape)

let prop_path_reqcomm_covered =
  QCheck.Test.make ~name:"per-path reqcomm covered by graph reqcomm"
    ~count:60
    (QCheck.make gen_shape ~print:shape_print)
    (fun shape ->
      let body =
        Printf.sprintf
          "List<T> ts = read_ts(p); R local = new R();\n%s\nacc.merge(local);"
          (shape_to_body shape)
      in
      let prog, g = graph_of body in
      let r = Bgraph.reqcomm prog g in
      let ctx =
        Gencons.create_ctx_for_body prog
          (List.concat_map (fun e -> e.Bgraph.e_code) g.Bgraph.edges)
      in
      List.for_all
        (fun path ->
          (* walk the path backward, accumulating the linear reqcomm *)
          let linear = Hashtbl.create 8 in
          let acc = ref Varset.empty in
          List.iter
            (fun (e : Bgraph.edge) ->
              Hashtbl.replace linear e.Bgraph.e_dst !acc;
              let gen, cons = Gencons.analyze_segment ctx e.Bgraph.e_code in
              acc := Varset.union (Varset.diff !acc gen) cons;
              Hashtbl.replace linear e.Bgraph.e_src !acc)
            (List.rev path);
          (* every item the path needs at a node is present in the graph's
             set at that node *)
          Hashtbl.fold
            (fun node vs ok ->
              ok
              && List.for_all
                   (fun item -> Varset.mem item r.(node))
                   (Varset.items vs))
            linear true)
        (Bgraph.flow_paths g))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_flow_path_count; prop_path_reqcomm_covered ]

let suite =
  qsuite
  @ [
    ("chain is chain", `Quick, test_chain_is_chain);
    ("branch forks", `Quick, test_branch_forks);
    ("flow paths connect", `Quick, test_flow_paths_start_to_end);
    ("atomic conditional stays chain", `Quick, test_atomic_conditional_stays_chain);
    ("reqcomm union at fork", `Quick, test_reqcomm_union_at_fork);
    ("reqcomm chain matches linear", `Quick, test_reqcomm_chain_matches_linear_analysis);
    ("nested branch", `Quick, test_nested_branch);
  ]

let () = Alcotest.run "bgraph" [ ("bgraph", suite) ]
