(* Tests for the one-pass Gen/Cons analysis (Figure 2). *)

module A = Alcotest
open Core
open Lang

(* Parse a program whose pipelined body is [body]; analyze the whole body
   as one segment. *)
let analyze ?(decls = "") body =
  let src =
    Printf.sprintf
      {|
class T { float a; float b; bool keep; }
class R implements Reducinterface {
  float x;
  void merge(R other) { this.x = this.x + other.x; }
}
%s
pipelined (p in [0 : 4]) { %s }
|}
      decls body
  in
  let prog = Parser.parse src in
  let ctx = Gencons.create_ctx prog in
  Gencons.analyze_segment ctx prog.Ast.pipeline.Ast.pd_body

(* Analyze only the [i]th segment of the segmented body. *)
let analyze_seg ?(decls = "") body i =
  let src =
    Printf.sprintf
      {|
class T { float a; float b; bool keep; }
class R implements Reducinterface {
  float x;
  void merge(R other) { this.x = this.x + other.x; }
}
%s
pipelined (p in [0 : 4]) { %s }
|}
      decls body
  in
  let prog = Parser.parse src in
  let segs = Boundary.segments_of_body prog.Ast.pipeline.Ast.pd_body in
  let ctx =
    Gencons.create_ctx_for_body prog
      (List.concat_map (fun s -> s.Boundary.seg_stmts) segs)
  in
  Gencons.analyze_segment ctx (List.nth segs i).Boundary.seg_stmts

let has set item = Varset.mem item set
let v x = Varset.Var x
let f c fl = Varset.ElemField (c, fl)
let coll c = Varset.Coll c

let test_assignment () =
  let gen, cons = analyze "int x = 0; int y = x + p;" in
  A.(check bool) "x gen" true (has gen (v "x"));
  A.(check bool) "y gen" true (has gen (v "y"));
  A.(check bool) "x not cons (defined before use)" false (has cons (v "x"));
  A.(check bool) "p cons" true (has cons (v "p"))

let test_use_before_def () =
  let gen, cons = analyze "int y = p; int x = y + 1; y = 2;" in
  A.(check bool) "y gen" true (has gen (v "y"));
  A.(check bool) "y not cons" false (has cons (v "y"));
  ignore gen

let test_conditional_gen_not_added () =
  (* Figure 2: Gen of a conditional block is not added *)
  let gen, cons = analyze "int x = 0; if (p > 0) { x = 1; } int y = x;" in
  ignore cons;
  A.(check bool) "x gen from unconditional decl" true (has gen (v "x"));
  let gen2, cons2 = analyze "if (p > 0) { int q = 1; q = q + 1; }" in
  A.(check bool) "no gen from branch" true (Varset.is_empty gen2);
  A.(check bool) "branch-local not cons" false (has cons2 (v "q"))

let test_conditional_cons_added () =
  let _, cons = analyze "int y = 0; if (p > 0) { y = y + p; }" in
  A.(check bool) "p cons" true (has cons (v "p"))

let test_self_update_in_both () =
  (* a reduction-style self-update consumes its previous value *)
  let gen, cons = analyze_seg ~decls:"" "foreach (i in [0 : 3]) { s = s + 1.0; }" 0 in
  ignore gen;
  (* s is undeclared here -> opaque scalar *)
  A.(check bool) "s consumed" true (has cons (v "s"))

let test_counted_loop_sections () =
  let gen, cons =
    analyze
      "float[] a = new float[10]; for (int i = 0; i < 10; i = i + 1) { a[i] \
       = 1.0; } float z = a[5];"
  in
  A.(check bool) "a fully generated" true
    (has gen (Varset.Arr ("a", Section.Range (Section.Bconst 0, Section.Bconst 10))));
  A.(check bool) "a not consumed (covered by loop)" false
    (has cons (Varset.Arr ("a", Section.Range (Section.Bconst 5, Section.Bconst 6))))

let test_loop_reads_become_sections () =
  let _, cons =
    analyze ~decls:"float[] b;"
      "float s = 0.0; for (int i = 0; i < 8; i = i + 1) { s = s + b[i]; } \
       float t = s;"
  in
  (* b is a global array: the read should cover [0:8] *)
  A.(check bool) "b[0:8] consumed" true
    (has cons (Varset.Arr ("b", Section.Range (Section.Bconst 0, Section.Bconst 8))))

let test_symbolic_loop_bounds () =
  let gen, _ =
    analyze
      "int n = p + 1; float[] a = new float[n]; for (int i = 0; i < n; i = i \
       + 1) { a[i] = 0.0; }"
  in
  A.(check bool) "gen with symbolic hi" true
    (has gen (Varset.Arr ("a", Section.Range (Section.Bconst 0, Section.Bsym "n"))))

let test_while_drops_array_gen () =
  let gen, _ =
    analyze
      "float[] a = new float[4]; int i = 0; while (i < 4) { a[i] = 1.0; i = \
       i + 1; }"
  in
  (* cannot prove coverage for the unstructured loop, but the decl's
     whole-array gen remains *)
  A.(check bool) "decl gen remains" true
    (has gen (Varset.Arr ("a", Section.Whole)))

let test_foreach_elem_fields () =
  let gen, cons =
    analyze_seg ~decls:""
      "List<T> ts = read_ts(p); foreach (t in ts) { t.b = t.a * 2.0; }" 1
  in
  A.(check bool) "ts.b gen" true (has gen (f "ts" "b"));
  A.(check bool) "ts.a cons" true (has cons (f "ts" "a"));
  A.(check bool) "ts.a not gen" false (has gen (f "ts" "a"));
  A.(check bool) "coll structure cons" true (has cons (coll "ts"))

let test_foreach_where_partial_gen () =
  let gen, cons =
    analyze_seg ~decls:""
      "List<T> ts = read_ts(p); foreach (t in ts where t.keep) { t.b = 1.0; }"
      1
  in
  A.(check bool) "partial write not gen" false (has gen (f "ts" "b"));
  A.(check bool) "where field cons" true (has cons (f "ts" "keep"))

let test_list_add_generates () =
  let gen, cons =
    analyze_seg ~decls:""
      "List<T> ts = read_ts(p); List<T> sel = new List<T>(); foreach (t in \
       ts where t.keep) { sel.add(t); }"
      1
  in
  A.(check bool) "sel structure gen" true (has gen (coll "sel"));
  A.(check bool) "sel fields gen" true (has gen (f "sel" "a"));
  A.(check bool) "source fields cons" true (has cons (f "ts" "a"))

let test_extern_call_defines_result () =
  let gen, cons = analyze_seg "List<T> ts = read_ts(p);" 0 in
  A.(check bool) "collection gen" true (has gen (coll "ts"));
  A.(check bool) "fields gen" true (has gen (f "ts" "a"));
  A.(check bool) "p cons" true (has cons (v "p"))

let test_interprocedural_field_use () =
  (* the read happens in segment 0; the foreach segment consumes the
     fields the callee touches *)
  let gen, cons =
    analyze_seg
      ~decls:"float get_a(T t) { return t.a + t.b; }"
      "List<T> ts = read_ts(p); float s = 0.0; foreach (t in ts) { s = \
       get_a(t); }"
      1
  in
  ignore gen;
  A.(check bool) "callee field reads mapped" true (has cons (f "ts" "b"))

let test_interprocedural_field_def () =
  let gen, _ =
    analyze
      ~decls:"void set_b(T t) { t.b = 0.0; }"
      "List<T> ts = read_ts(p); foreach (t in ts) { set_b(t); }"
  in
  A.(check bool) "callee writes mapped" true (has gen (f "ts" "b"))

let test_callee_locals_do_not_leak () =
  let gen, cons =
    analyze
      ~decls:"float helper(float x) { float tmp = x * 2.0; return tmp; }"
      "float r = helper(3.0);"
  in
  A.(check bool) "tmp not gen" false (has gen (v "tmp"));
  A.(check bool) "tmp not cons" false (has cons (v "tmp"));
  A.(check bool) "x not cons" false (has cons (v "x"))

let test_method_this_mapping () =
  let gen, cons =
    analyze ~decls:""
      "R local = new R(); R other = new R(); local.merge(other);"
  in
  A.(check bool) "this.x mapped to local" true (has gen (f "local" "x"));
  A.(check bool) "other.x consumed" true (has cons (f "other" "x") || has gen (f "other" "x"))

let test_recursion_conservative () =
  let _, cons =
    analyze
      ~decls:"int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }"
      "int r = fib(p);"
  in
  A.(check bool) "arg consumed" true (has cons (v "p"))

let test_externs_called () =
  let src =
    {|
pipelined (p in [0 : 2]) {
  List<float> xs = read_data(p);
  float y = sqrt(2.0);
  emit(y);
}
|}
  in
  let prog = Parser.parse src in
  let e = Gencons.externs_called prog prog.Ast.pipeline.Ast.pd_body in
  let module S = Set.Make (String) in
  A.(check bool) "read_data found" true (S.mem "read_data" e);
  A.(check bool) "emit found" true (S.mem "emit" e);
  A.(check bool) "builtin sqrt excluded" false (S.mem "sqrt" e)

let suite =
  [
    ("assignment", `Quick, test_assignment);
    ("use before def", `Quick, test_use_before_def);
    ("conditional gen not added", `Quick, test_conditional_gen_not_added);
    ("conditional cons added", `Quick, test_conditional_cons_added);
    ("self-update consumed", `Quick, test_self_update_in_both);
    ("counted loop sections", `Quick, test_counted_loop_sections);
    ("loop reads sections", `Quick, test_loop_reads_become_sections);
    ("symbolic loop bounds", `Quick, test_symbolic_loop_bounds);
    ("while drops array gen", `Quick, test_while_drops_array_gen);
    ("foreach elem fields", `Quick, test_foreach_elem_fields);
    ("foreach where partial gen", `Quick, test_foreach_where_partial_gen);
    ("list add generates", `Quick, test_list_add_generates);
    ("extern call defines result", `Quick, test_extern_call_defines_result);
    ("interprocedural field use", `Quick, test_interprocedural_field_use);
    ("interprocedural field def", `Quick, test_interprocedural_field_def);
    ("callee locals don't leak", `Quick, test_callee_locals_do_not_leak);
    ("method this mapping", `Quick, test_method_this_mapping);
    ("recursion conservative", `Quick, test_recursion_conservative);
    ("externs_called", `Quick, test_externs_called);
  ]

let () = Alcotest.run "gencons" [ ("gencons", suite) ]
