(* Golden tests for the filter emitter: the rendered filter code of two
   applications at fixed decompositions must match the committed files.
   Regenerate with `dune exec bin/gen_golden.exe -- test/golden` after an
   intentional change. *)

module A = Alcotest
open Core
module H = Apps.Harness

let plan_of app assignment m =
  let prog = Compile.front_end ~externs_sig:app.H.externs_sig app.H.source in
  let segments = Compile.segment ~prog in
  let rc = Reqcomm.analyze prog segments in
  Codegen.make_plan prog segments rc ~assignment ~m
    ~num_packets:app.H.num_packets ~externs:app.H.externs
    ~runtime_defs:(("num_packets", app.H.num_packets) :: app.H.runtime_defs)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The test binary runs from its own build directory; golden files are
   copied next to it by the dune rule (deps). *)
let golden name = read_file (Filename.concat "golden" name)

let check_golden name app assignment m () =
  let plan = plan_of app assignment m in
  A.(check string) name (golden name) (Emit.emit_plan plan)

let suite =
  [
    ( "knn filters",
      `Quick,
      check_golden "knn_filters.txt" (H.knn_app Apps.Knn.tiny)
        [| 1; 1; 1; 2 |] 3 );
    ( "vmscope filters",
      `Quick,
      check_golden "vmscope_filters.txt"
        (H.vmscope_app Apps.Vmscope.tiny)
        [| 1; 1; 3 |] 3 );
  ]

let () = Alcotest.run "emit-golden" [ ("emit-golden", suite) ]
