(* End-to-end property test: random PipeLang pipeline programs are
   compiled, decomposed, executed on the simulated cluster at random
   widths, and the sink's reduction result must equal the sequential
   reference semantics.

   Programs are drawn from a schema exercising the analysis paths that
   matter: a collection of two-field elements read from a source, a
   random chain of transformation foreach segments (each writing one
   element field from a random expression over both fields and the
   segment's scalar locals), an optional where-compaction, a fold into a
   per-packet partial, and a merge into the reduction global. *)

module A = Alcotest
open Core
module V = Lang.Value

(* --- random expression over fields "t.a", "t.b" and constants --- *)

type rexpr =
  | Field_a
  | Field_b
  | Const of float
  | Add of rexpr * rexpr
  | Mul of rexpr * rexpr
  | Min of rexpr * rexpr

let rec rexpr_to_src = function
  | Field_a -> "t.a"
  | Field_b -> "t.b"
  | Const f -> Printf.sprintf "%.3f" f
  | Add (x, y) -> Printf.sprintf "(%s + %s)" (rexpr_to_src x) (rexpr_to_src y)
  | Mul (x, y) -> Printf.sprintf "(%s * %s)" (rexpr_to_src x) (rexpr_to_src y)
  | Min (x, y) ->
      Printf.sprintf "fmin(%s, %s)" (rexpr_to_src x) (rexpr_to_src y)

let gen_rexpr =
  let open QCheck.Gen in
  let base =
    oneof
      [
        return Field_a;
        return Field_b;
        map (fun f -> Const (Float.of_int (f mod 7) /. 4.0)) small_int;
      ]
  in
  fix
    (fun self n ->
      if n <= 0 then base
      else
        frequency
          [
            (2, base);
            (1, map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> Min (a, b)) (self (n / 2)) (self (n / 2)));
          ])
    2

type spec = {
  transforms : (bool * rexpr) list; (* target field (true = a), expr *)
  compact : bool;                   (* insert a where-compaction *)
  fold_expr : rexpr;
  widths : int array;
  strategy_default : bool;
}

let gen_spec =
  let open QCheck.Gen in
  let* n_transforms = 0 -- 3 in
  let* transforms =
    list_repeat n_transforms (pair bool gen_rexpr)
  in
  let* compact = bool in
  let* fold_expr = gen_rexpr in
  let* w = oneofl [ [| 1; 1; 1 |]; [| 2; 2; 1 |]; [| 3; 2; 1 |]; [| 4; 4; 1 |] ] in
  let* strategy_default = bool in
  return { transforms; compact; fold_expr; widths = w; strategy_default }

let print_spec spec =
  let b = Buffer.create 128 in
  List.iter
    (fun (to_a, e) ->
      Buffer.add_string b
        (Printf.sprintf "t.%s = %s; " (if to_a then "a" else "b") (rexpr_to_src e)))
    spec.transforms;
  Printf.sprintf "transforms=[%s] compact=%b fold=%s widths=%s default=%b"
    (Buffer.contents b) spec.compact (rexpr_to_src spec.fold_expr)
    (String.concat "-" (Array.to_list (Array.map string_of_int spec.widths)))
    spec.strategy_default

(* --- program construction --- *)

let source_of_spec spec =
  let b = Buffer.create 512 in
  Buffer.add_string b
    {|
class P {
  float a;
  float b;
}
class R implements Reducinterface {
  float x;
  int n;
  void merge(R other) {
    this.x = this.x + other.x;
    this.n = this.n + other.n;
  }
}
R acc = new R();
pipelined (p in [0 : runtime_define num_packets]) {
  List<P> ps = read_ps(p);
|};
  List.iteri
    (fun i (to_a, e) ->
      Buffer.add_string b
        (Printf.sprintf "  foreach (t in ps) { t.%s = %s; }\n"
           (if to_a then "a" else "b")
           (rexpr_to_src e));
      ignore i)
    spec.transforms;
  let coll =
    if spec.compact then begin
      Buffer.add_string b
        "  List<P> sel = new List<P>();\n\
        \  foreach (t in ps where t.a >= t.b) { sel.add(t); }\n";
      "sel"
    end
    else "ps"
  in
  Buffer.add_string b
    (Printf.sprintf
       "  R local = new R();\n\
       \  foreach (t in %s) {\n\
       \    local.x += %s;\n\
       \    local.n += 1;\n\
       \  }\n\
       \  acc.merge(local);\n\
        }\n"
       coll
       (rexpr_to_src spec.fold_expr));
  Buffer.contents b

let read_ps : string * Lang.Interp.extern_fn =
  ( "read_ps",
    fun _ctx args ->
      let p = V.as_int (List.hd args) in
      let vec = V.Vec.create () in
      for i = 0 to 39 do
        let fields = Hashtbl.create 2 in
        Hashtbl.replace fields "a"
          (V.Vfloat (Apps.Prng.hash_float 21 ((p * 40 * 2) + (2 * i))));
        Hashtbl.replace fields "b"
          (V.Vfloat (Apps.Prng.hash_float 21 ((p * 40 * 2) + (2 * i) + 1)));
        V.Vec.push vec (V.Vobject { V.ocls = "P"; V.ofields = fields })
      done;
      V.Vlist vec )

let externs_sig =
  [
    Lang.Typecheck.
      {
        ex_name = "read_ps";
        ex_params = [ Lang.Ast.Tint ];
        ex_ret = Lang.Ast.Tlist (Lang.Ast.Tclass "P");
      };
  ]

let pipeline =
  Costmodel.make_pipeline
    ~powers:[| 2e6; 2e6; 1e6 |]
    ~bandwidths:[| 5e5; 5e5 |]
    ~latency:0.0002 ()

let run_spec spec =
  let source = source_of_spec spec in
  let compiled =
    Compile.compile ~source ~externs_sig ~externs:[ read_ps ] ~pipeline
      ~num_packets:6 ~source_externs:[ "read_ps" ]
      ~strategy:(if spec.strategy_default then Compile.Default else Compile.Decomp)
      ()
  in
  let _, results = Compile.run_simulated compiled ~widths:spec.widths () in
  let reference = Compile.run_reference compiled in
  let extract l =
    match List.assoc "acc" l with
    | V.Vobject o -> (V.as_float (V.field o "x"), V.as_int (V.field o "n"))
    | _ -> A.fail "expected object"
  in
  let sx, sn = extract results in
  let rx, rn = extract reference in
  (* the element count is exact; float sums may differ by association
     across the merge tree *)
  sn = rn && abs_float (sx -. rx) < 1e-6 *. (1.0 +. abs_float rx)

let prop_random_pipelines =
  QCheck.Test.make ~name:"random pipelines: simulated == reference" ~count:60
    (QCheck.make gen_spec ~print:print_spec)
    run_spec

(* also run the decomposed pipelines on real domains, fewer cases *)
let run_spec_parallel spec =
  let source = source_of_spec spec in
  let compiled =
    Compile.compile ~source ~externs_sig ~externs:[ read_ps ] ~pipeline
      ~num_packets:6 ~source_externs:[ "read_ps" ] ()
  in
  let _, results = Compile.run_parallel compiled ~widths:spec.widths () in
  let reference = Compile.run_reference compiled in
  let extract l =
    match List.assoc "acc" l with
    | V.Vobject o -> (V.as_float (V.field o "x"), V.as_int (V.field o "n"))
    | _ -> A.fail "expected object"
  in
  let sx, sn = extract results in
  let rx, rn = extract reference in
  sn = rn && abs_float (sx -. rx) < 1e-6 *. (1.0 +. abs_float rx)

let prop_random_pipelines_parallel =
  QCheck.Test.make ~name:"random pipelines on domains: parallel == reference"
    ~count:10
    (QCheck.make gen_spec ~print:print_spec)
    run_spec_parallel

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_pipelines; prop_random_pipelines_parallel ]

let () = Alcotest.run "endtoend" [ ("random programs", suite) ]
