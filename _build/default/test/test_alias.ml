(* Tests for the may/must alias treatment of the Gen/Cons analysis
   (Figure 2 relies on must-alias info for Gen and may-alias for Cons). *)

module A = Alcotest
open Core
open Lang

(* --- the Alias module itself --- *)

let is_ref v = List.mem v [ "p"; "q"; "r"; "xs"; "ys" ]

let aliases_of src =
  Alias.of_stmts ~is_ref (Parser.parse_stmts_string src)

let test_direct_assignment_aliases () =
  let a = aliases_of "q = p;" in
  A.(check bool) "q ~ p" true (Alias.may_alias a "q" "p");
  A.(check bool) "p not unaliased" false (Alias.unaliased a "p");
  A.(check bool) "q not unaliased" false (Alias.unaliased a "q");
  A.(check bool) "r unaffected" true (Alias.unaliased a "r")

let test_decl_from_var_aliases () =
  let a = aliases_of "int v = 3; q = p;" in
  A.(check bool) "q ~ p" true (Alias.may_alias a "q" "p");
  A.(check bool) "scalar copy no alias" true (Alias.unaliased a "r")

let test_transitive () =
  let a = aliases_of "q = p; r = q;" in
  A.(check bool) "r ~ p transitively" true (Alias.may_alias a "r" "p")

let test_escape_via_field_store () =
  let a = aliases_of "q.next = p;" in
  A.(check bool) "p escaped" false (Alias.unaliased a "p");
  (* two escaped references conservatively alias *)
  let a2 = aliases_of "q.next = p; ys.add(r);" in
  A.(check bool) "escaped pair may alias" true (Alias.may_alias a2 "p" "r")

let test_escape_via_list_add () =
  let a = aliases_of "xs.add(p);" in
  A.(check bool) "p escaped" false (Alias.unaliased a "p")

let test_self_identity () =
  let a = aliases_of "int v = 1;" in
  A.(check bool) "always may-alias self" true (Alias.may_alias a "p" "p")

let test_conditional_assignment_counts () =
  (* flow-insensitive: even an assignment under a conditional aliases *)
  let a = aliases_of "if (b) { q = p; }" in
  A.(check bool) "q ~ p" true (Alias.may_alias a "q" "p")

(* --- effect on Gen/Cons --- *)

let analyze ?(decls = "") body =
  let src =
    Printf.sprintf
      {|
class T { float a; float b; }
%s
pipelined (p in [0 : 2]) { %s }
|}
      decls body
  in
  let prog = Parser.parse src in
  let ctx = Gencons.create_ctx prog in
  Gencons.analyze_segment ctx prog.Ast.pipeline.Ast.pd_body

let f c fl = Varset.ElemField (c, fl)

let test_write_through_alias_not_gen () =
  let gen, _ =
    analyze "T t1 = new T(); T t2 = t1; t2.a = 1.0;"
  in
  (* the decl of t2 copies a reference; the write through t2 cannot be a
     must-definition of t2's fields *)
  A.(check bool) "t2.a not must-gen" false (Varset.mem (f "t2" "a") gen)

let test_write_unaliased_is_gen () =
  let gen, _ = analyze "T t1 = new T(); t1.a = 1.0;" in
  A.(check bool) "t1.a gen" true (Varset.mem (f "t1" "a") gen)

let test_decl_still_gen_despite_escape () =
  (* a fresh zero-initialized object is must-defined by its declaration
     even when the reference later escapes into a collection *)
  let gen, _ =
    analyze
      "List<T> ts = new List<T>(); T t1 = new T(); t1.a = 2.0; ts.add(t1);"
  in
  A.(check bool) "decl gen survives" true (Varset.mem (f "t1" "a") gen)

let test_escaped_outer_write_demoted () =
  (* writing through an escaped reference to a pre-existing object is not
     a must-definition *)
  let gen, _ =
    analyze ~decls:"T g = new T();"
      "List<T> ts = new List<T>(); ts.add(g); g.b = 3.0;"
  in
  A.(check bool) "post-escape write demoted" false (Varset.mem (f "g" "b") gen)

let test_aliased_add_demoted () =
  let gen, _ =
    analyze
      "List<T> xs = new List<T>(); List<T> ys = xs; T t1 = new T(); \
       ys.add(t1);"
  in
  (* adding through an aliased collection name cannot must-define it *)
  A.(check bool) "no structure gen through alias" false
    (Varset.mem (Varset.Coll "ys") gen)

(* --- compile-time boundary check --- *)

let test_compile_rejects_aliases_across_boundary () =
  let src =
    {|
class T { float a; float b; }
class R implements Reducinterface {
  float x;
  void merge(R other) { this.x = this.x + other.x; }
}
float touch(T t) { return t.a; }
R acc = new R();
pipelined (p in [0 : 2]) {
  List<T> ts = read_ts(p);
  List<T> us = ts;
  R local = new R();
  foreach (t in ts) {
    local.x += t.a;
  }
  foreach (t in us) {
    local.x += t.b;
  }
  acc.merge(local);
}
|}
  in
  let externs_sig =
    [
      Typecheck.
        {
          ex_name = "read_ts";
          ex_params = [ Ast.Tint ];
          ex_ret = Ast.Tlist (Ast.Tclass "T");
        };
    ]
  in
  let read_ts : string * Interp.extern_fn =
    ("read_ts", fun _ _ -> Value.Vlist (Value.Vec.create ()))
  in
  let pipeline = Costmodel.uniform ~m:3 ~power:1e6 ~bandwidth:1e6 () in
  match
    Compile.compile ~source:src ~externs_sig ~externs:[ read_ts ] ~pipeline
      ~num_packets:2 ~source_externs:[ "read_ts" ] ()
  with
  | exception Srcloc.Error (_, msg) ->
      A.(check bool) "mentions aliasing" true
        (Astring.String.is_infix ~affix:"alias" msg)
  | _ -> A.fail "expected an aliasing rejection"

let test_compile_accepts_unaliased () =
  (* the same program without the aliasing declaration compiles *)
  let src =
    {|
class T { float a; float b; }
class R implements Reducinterface {
  float x;
  void merge(R other) { this.x = this.x + other.x; }
}
R acc = new R();
pipelined (p in [0 : 2]) {
  List<T> ts = read_ts(p);
  R local = new R();
  foreach (t in ts) {
    local.x += t.a + t.b;
  }
  acc.merge(local);
}
|}
  in
  let externs_sig =
    [
      Typecheck.
        {
          ex_name = "read_ts";
          ex_params = [ Ast.Tint ];
          ex_ret = Ast.Tlist (Ast.Tclass "T");
        };
    ]
  in
  let read_ts : string * Interp.extern_fn =
    ("read_ts", fun _ _ -> Value.Vlist (Value.Vec.create ()))
  in
  let pipeline = Costmodel.uniform ~m:3 ~power:1e6 ~bandwidth:1e6 () in
  let c =
    Compile.compile ~source:src ~externs_sig ~externs:[ read_ts ] ~pipeline
      ~num_packets:2 ~source_externs:[ "read_ts" ] ()
  in
  A.(check bool) "compiled" true (List.length c.Compile.segments > 0)

let suite =
  [
    ("direct assignment aliases", `Quick, test_direct_assignment_aliases);
    ("decl from var aliases", `Quick, test_decl_from_var_aliases);
    ("transitive", `Quick, test_transitive);
    ("escape via field store", `Quick, test_escape_via_field_store);
    ("escape via list add", `Quick, test_escape_via_list_add);
    ("self identity", `Quick, test_self_identity);
    ("conditional assignment counts", `Quick, test_conditional_assignment_counts);
    ("write through alias not gen", `Quick, test_write_through_alias_not_gen);
    ("write unaliased is gen", `Quick, test_write_unaliased_is_gen);
    ("decl gen despite escape", `Quick, test_decl_still_gen_despite_escape);
    ("escaped outer write demoted", `Quick, test_escaped_outer_write_demoted);
    ("aliased add demoted", `Quick, test_aliased_add_demoted);
    ("compile rejects cross-boundary alias", `Quick, test_compile_rejects_aliases_across_boundary);
    ("compile accepts unaliased", `Quick, test_compile_accepts_unaliased);
  ]

let () = Alcotest.run "alias" [ ("alias", suite) ]
