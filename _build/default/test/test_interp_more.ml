(* Additional interpreter and front-end coverage: list operations,
   nested classes, rectdomain values, runtime defines, operation
   accounting details, and the app sources themselves round-tripping
   through the pretty-printer. *)

module A = Alcotest
open Lang
module V = Value

let run ?(externs = []) ?(runtime_defs = []) src =
  let prog = Parser.parse src in
  Typecheck.check
    ~externs:
      (List.map
         (fun (name, _) ->
           Typecheck.{ ex_name = name; ex_params = [ Ast.Tint ]; ex_ret = Ast.Tint })
         externs)
    prog;
  let ctx = Interp.create_ctx ~externs ~runtime_defs prog in
  (ctx, Interp.run_reference ctx)

let acc_template body =
  Printf.sprintf
    {|
class Acc implements Reducinterface {
  float x;
  void merge(Acc other) { this.x = this.x + other.x; }
}
Acc result = new Acc();
pipelined (p in [0 : 1]) {
  Acc local = new Acc();
  %s
  result.merge(local);
}
|}
    body

let result_x genv =
  match Interp.global_value genv "result" with
  | V.Vobject o -> V.as_float (V.field o "x")
  | _ -> A.fail "expected object"

let test_list_get_and_size () =
  let _, genv =
    run
      (acc_template
         "List<float> xs = new List<float>(); xs.add(1.5); xs.add(2.5); \
          xs.add(3.0); local.x = xs.get(1) + float_of_int(xs.size());")
  in
  A.(check (float 1e-12)) "get+size" 5.5 (result_x genv)

let test_list_clear () =
  let _, genv =
    run
      (acc_template
         "List<int> xs = new List<int>(); xs.add(1); xs.clear(); local.x = \
          float_of_int(xs.size());")
  in
  A.(check (float 1e-12)) "cleared" 0.0 (result_x genv)

let test_nested_class_fields () =
  let src =
    {|
class Inner { float v; }
class Outer { Inner left; Inner right; }
class Acc implements Reducinterface {
  float x;
  void merge(Acc other) { this.x = this.x + other.x; }
}
Acc result = new Acc();
pipelined (p in [0 : 1]) {
  Outer o = new Outer();
  o.left = new Inner();
  o.right = new Inner();
  o.left.v = 4.0;
  o.right.v = 2.0;
  Acc local = new Acc();
  local.x = o.left.v / o.right.v;
  result.merge(local);
}
|}
  in
  let prog = Parser.parse src in
  Typecheck.check prog;
  let ctx = Interp.create_ctx prog in
  let genv = Interp.run_reference ctx in
  A.(check (float 1e-12)) "nested" 2.0 (result_x genv)

let test_rectdomain_value_and_foreach () =
  let _, genv =
    run
      (acc_template
         "Rectdomain r = [2 : 6]; foreach (i in r) { local.x += \
          float_of_int(i); }")
  in
  A.(check (float 1e-12)) "2+3+4+5" 14.0 (result_x genv)

let test_runtime_define_missing () =
  let src = acc_template "local.x = float_of_int(runtime_define missing);" in
  let prog = Parser.parse src in
  Typecheck.check prog;
  let ctx = Interp.create_ctx prog in
  match Interp.run_reference ctx with
  | exception V.Runtime_error msg ->
      A.(check bool) "names the define" true
        (Astring.String.is_infix ~affix:"missing" msg)
  | _ -> A.fail "expected runtime error"

let test_set_runtime_define () =
  let src = acc_template "local.x = float_of_int(runtime_define knob);" in
  let prog = Parser.parse src in
  Typecheck.check prog;
  let ctx = Interp.create_ctx prog in
  Interp.set_runtime_define ctx "knob" 17;
  A.(check (float 1e-12)) "value" 17.0 (result_x (Interp.run_reference ctx))

let test_extern_dispatch () =
  let twice : Interp.extern_fn =
   fun _ctx args -> V.Vint (2 * V.as_int (List.hd args))
  in
  let _, genv =
    run
      ~externs:[ ("twice", twice) ]
      (acc_template "local.x = float_of_int(twice(21));")
  in
  A.(check (float 1e-12)) "extern" 42.0 (result_x genv)

let test_unknown_function_errors () =
  let src = acc_template "local.x = float_of_int(nosuch(1));" in
  let prog = Parser.parse src in
  (* bypass the type checker to reach the interpreter's error *)
  let ctx = Interp.create_ctx prog in
  match Interp.run_reference ctx with
  | exception V.Runtime_error msg ->
      A.(check bool) "unknown function" true
        (Astring.String.is_infix ~affix:"nosuch" msg)
  | _ -> A.fail "expected runtime error"

let test_builtin_math () =
  let _, genv =
    run
      (acc_template
         "local.x = sqrt(16.0) + fabs(-1.5) + floor(2.9) + ceil(0.1) + \
          fmin(1.0, 2.0) + fmax(1.0, 2.0) + float_of_int(imin(3, 4) + \
          imax(3, 4) + iabs(-5));")
  in
  A.(check (float 1e-9)) "math" (4.0 +. 1.5 +. 2.0 +. 1.0 +. 1.0 +. 2.0 +. 12.0)
    (result_x genv)

let test_trig_builtins () =
  let _, genv = run (acc_template "local.x = sin(0.0) + cos(0.0);") in
  A.(check (float 1e-12)) "sin0+cos0" 1.0 (result_x genv)

let test_mod_and_div_ints () =
  let _, genv =
    run (acc_template "int a = 17; int b = 5; local.x = float_of_int(a / b * 10 + a % b);")
  in
  A.(check (float 1e-12)) "div/mod" 32.0 (result_x genv)

let test_float_int_promotion () =
  let _, genv = run (acc_template "float f = 3; local.x = f + 1;") in
  A.(check (float 1e-12)) "promotion" 4.0 (result_x genv)

let test_alloc_counting () =
  let ctx, _ =
    run (acc_template "foreach (i in [0 : 10]) { Acc tmp = new Acc(); tmp.x = 0.0; }")
  in
  A.(check bool) "allocs counted" true (ctx.Interp.counter.Opcount.allocs >= 10)

let test_append_counting () =
  let ctx, _ =
    run
      (acc_template
         "List<int> xs = new List<int>(); foreach (i in [0 : 7]) { xs.add(i); }")
  in
  A.(check int) "appends" 7 ctx.Interp.counter.Opcount.appends

(* --- app sources survive a pretty-print round trip --- *)

let roundtrip_app name source externs_sig =
  let prog = Parser.parse ~file:name source in
  Typecheck.check ~externs:externs_sig prog;
  let printed = Pretty.program_to_string prog in
  let reparsed = Parser.parse ~file:(name ^ "-printed") printed in
  Typecheck.check ~externs:externs_sig reparsed;
  A.(check string) (name ^ " fixpoint") printed (Pretty.program_to_string reparsed)

let test_app_sources_roundtrip () =
  roundtrip_app "zbuffer" Apps.Isosurface.zbuffer_source Apps.Isosurface.externs_sig;
  roundtrip_app "apix" Apps.Isosurface.apix_source Apps.Isosurface.externs_sig;
  roundtrip_app "knn" Apps.Knn.source Apps.Knn.externs_sig;
  roundtrip_app "vmscope" Apps.Vmscope.source Apps.Vmscope.externs_sig;
  roundtrip_app "kmeans" Apps.Kmeans.source Apps.Kmeans.externs_sig

(* reference executions of a pretty-printed program agree with the
   original *)
let test_roundtrip_execution_agrees () =
  let cfg = Apps.Knn.tiny in
  let run_prog source =
    let prog = Parser.parse source in
    Typecheck.check ~externs:Apps.Knn.externs_sig prog;
    let ctx =
      Interp.create_ctx ~externs:(Apps.Knn.externs cfg)
        ~runtime_defs:(("num_packets", cfg.Apps.Knn.num_packets) :: Apps.Knn.runtime_defs cfg)
        prog
    in
    let genv = Interp.run_reference ctx in
    Apps.Knn.knn_result (Interp.global_value genv "result")
  in
  let original = run_prog Apps.Knn.source in
  let printed =
    Pretty.program_to_string (Parser.parse Apps.Knn.source)
  in
  A.(check bool) "same results" true (original = run_prog printed)

let suite =
  [
    ("list get/size", `Quick, test_list_get_and_size);
    ("list clear", `Quick, test_list_clear);
    ("nested class fields", `Quick, test_nested_class_fields);
    ("rectdomain foreach", `Quick, test_rectdomain_value_and_foreach);
    ("runtime define missing", `Quick, test_runtime_define_missing);
    ("set runtime define", `Quick, test_set_runtime_define);
    ("extern dispatch", `Quick, test_extern_dispatch);
    ("unknown function", `Quick, test_unknown_function_errors);
    ("builtin math", `Quick, test_builtin_math);
    ("trig builtins", `Quick, test_trig_builtins);
    ("int div/mod", `Quick, test_mod_and_div_ints);
    ("int->float promotion", `Quick, test_float_int_promotion);
    ("alloc counting", `Quick, test_alloc_counting);
    ("append counting", `Quick, test_append_counting);
    ("app sources round-trip", `Quick, test_app_sources_roundtrip);
    ("round-trip execution agrees", `Quick, test_roundtrip_execution_agrees);
  ]

let () = Alcotest.run "interp-more" [ ("interp-more", suite) ]
