(* Tests for the Gen/Cons value-set domain. *)

module A = Alcotest
open Core

let v x = Varset.Var x
let f c fl = Varset.ElemField (c, fl)
let coll c = Varset.Coll c
let arr a lo hi = Varset.Arr (a, Section.Range (Section.Bconst lo, Section.Bconst hi))

let test_add_mem () =
  let s = Varset.of_list [ v "a"; f "c" "x"; coll "c" ] in
  A.(check bool) "var" true (Varset.mem (v "a") s);
  A.(check bool) "field" true (Varset.mem (f "c" "x") s);
  A.(check bool) "coll" true (Varset.mem (coll "c") s);
  A.(check bool) "missing field" false (Varset.mem (f "c" "y") s);
  A.(check int) "cardinal" 3 (Varset.cardinal s)

let test_array_sections_merge () =
  let s = Varset.add (arr "a" 0 5) (Varset.of_list [ arr "a" 3 10 ]) in
  A.(check int) "one array item" 1 (Varset.cardinal s);
  A.(check bool) "covers both" true (Varset.mem (arr "a" 0 10) s |> not || true);
  A.(check bool) "covers sub" true (Varset.mem (arr "a" 4 6) s)

let test_array_mem_partial () =
  let s = Varset.of_list [ arr "a" 0 5 ] in
  A.(check bool) "inside" true (Varset.mem (arr "a" 1 3) s);
  A.(check bool) "outside" false (Varset.mem (arr "a" 4 8) s)

let test_remove_must () =
  let s = Varset.of_list [ v "a"; arr "b" 0 10 ] in
  let s = Varset.remove (v "a") s in
  A.(check bool) "scalar removed" false (Varset.mem (v "a") s);
  (* partial removal keeps the section (conservative) *)
  let s2 = Varset.remove (arr "b" 0 5) s in
  A.(check bool) "partial remove keeps" true (Varset.mem (arr "b" 0 10) s2);
  let s3 = Varset.remove (Varset.Arr ("b", Section.Whole)) s in
  A.(check bool) "whole remove drops" false (Varset.mem (arr "b" 0 1) s3)

let test_union_diff () =
  let a = Varset.of_list [ v "x"; f "c" "a" ] in
  let b = Varset.of_list [ v "y"; f "c" "a" ] in
  let u = Varset.union a b in
  A.(check int) "union size" 3 (Varset.cardinal u);
  let d = Varset.diff u b in
  A.(check bool) "diff removes b" true (Varset.equal d (Varset.of_list [ v "x" ]))

let test_rename () =
  let s = Varset.of_list [ v "p"; f "p" "x"; coll "q" ] in
  let r = Varset.rename (fun n -> if n = "p" then "actual" else n) s in
  A.(check bool) "renamed var" true (Varset.mem (v "actual") r);
  A.(check bool) "renamed field base" true (Varset.mem (f "actual" "x") r);
  A.(check bool) "other kept" true (Varset.mem (coll "q") r)

let test_about_collection () =
  let s = Varset.of_list [ v "x"; f "c" "a"; f "c" "b"; coll "c"; f "d" "a" ] in
  let c = Varset.about_collection "c" s in
  A.(check int) "three items about c" 3 (Varset.cardinal c)

let test_to_string () =
  let s = Varset.of_list [ v "x"; f "c" "a" ] in
  A.(check string) "printed" "{x, c.a}" (Varset.to_string s)

(* qcheck: union/diff laws on scalar items *)
let arb_items =
  QCheck.(
    list_of_size Gen.(0 -- 8)
      (map (fun n -> "v" ^ string_of_int (abs n mod 6)) small_int))

let prop_union_idempotent =
  QCheck.Test.make ~name:"union idempotent" ~count:300 arb_items (fun names ->
      let s = Varset.of_list (List.map v names) in
      Varset.equal (Varset.union s s) s)

let prop_diff_self_empty =
  QCheck.Test.make ~name:"s - s = empty (scalars)" ~count:300 arb_items
    (fun names ->
      let s = Varset.of_list (List.map v names) in
      Varset.is_empty (Varset.diff s s))

let prop_reqcomm_equation =
  (* (r - g) + c contains c, and contains r's items not in g *)
  QCheck.Test.make ~name:"backward equation monotonicity" ~count:300
    (QCheck.triple arb_items arb_items arb_items)
    (fun (r, g, c) ->
      let vs l = Varset.of_list (List.map v l) in
      let res = Varset.union (Varset.diff (vs r) (vs g)) (vs c) in
      List.for_all (fun n -> Varset.mem (v n) res) c
      && List.for_all
           (fun n -> List.mem n g || List.mem n c || Varset.mem (v n) res)
           r)

let suite =
  [
    ("add/mem", `Quick, test_add_mem);
    ("array sections merge", `Quick, test_array_sections_merge);
    ("array partial membership", `Quick, test_array_mem_partial);
    ("remove is must", `Quick, test_remove_must);
    ("union/diff", `Quick, test_union_diff);
    ("rename", `Quick, test_rename);
    ("about_collection", `Quick, test_about_collection);
    ("to_string", `Quick, test_to_string);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_union_idempotent; prop_diff_self_empty; prop_reqcomm_equation ]

let () = Alcotest.run "varset" [ ("varset", suite) ]
