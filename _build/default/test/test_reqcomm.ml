(* Tests for the backward ReqComm propagation (§4.2). *)

module A = Alcotest
open Core
open Lang

let analyze src =
  let prog = Parser.parse src in
  let segs = Boundary.segments_of_body prog.Ast.pipeline.Ast.pd_body in
  (prog, segs, Reqcomm.analyze prog segs)

let pipeline_src =
  {|
class T { float a; float b; bool keep; }
class R implements Reducinterface {
  float x;
  void merge(R other) { this.x = this.x + other.x; }
}
int threshold = 10;
R acc = new R();
pipelined (p in [0 : 4]) {
  List<T> ts = read_ts(p);
  List<T> sel = new List<T>();
  foreach (t in ts where t.keep) {
    sel.add(t);
  }
  R local = new R();
  foreach (t in sel) {
    local.x += t.a;
  }
  acc.merge(local);
}
|}

let v x = Varset.Var x
let f c fl = Varset.ElemField (c, fl)
let coll c = Varset.Coll c

let test_backward_propagation () =
  let _, segs, rc = analyze pipeline_src in
  A.(check int) "segments" 4 (List.length segs);
  (* boundary 1 (after the read): everything of ts flows *)
  let b1 = Reqcomm.reqcomm_into rc 1 in
  A.(check bool) "ts.a" true (Varset.mem (f "ts" "a") b1);
  A.(check bool) "ts.keep" true (Varset.mem (f "ts" "keep") b1);
  A.(check bool) "ts structure" true (Varset.mem (coll "ts") b1);
  (* boundary 2 (after the compaction): only sel flows, ts is dead *)
  let b2 = Reqcomm.reqcomm_into rc 2 in
  A.(check bool) "sel.a" true (Varset.mem (f "sel" "a") b2);
  A.(check bool) "ts dead" false (Varset.mem (f "ts" "a") b2);
  (* boundary 3 (before the merge): the local partial flows *)
  let b3 = Reqcomm.reqcomm_into rc 3 in
  A.(check bool) "local.x" true (Varset.mem (f "local" "x") b3);
  A.(check bool) "sel dead" false (Varset.mem (f "sel" "a") b3);
  (* end: nothing *)
  A.(check bool) "end empty" true (Varset.is_empty (Reqcomm.reqcomm_into rc 4))

let test_narrowing_to_used_fields () =
  (* only the fields downstream actually reads should cross *)
  let _, _, rc =
    analyze
      {|
class T { float a; float b; bool keep; }
pipelined (p in [0 : 2]) {
  List<T> ts = read_ts(p);
  float s = 0.0;
  foreach (t in ts) { s = s + t.a; }
  emit(s);
}
|}
  in
  let b1 = Reqcomm.reqcomm_into rc 1 in
  A.(check bool) "a crosses" true (Varset.mem (f "ts" "a") b1);
  A.(check bool) "b does not" false (Varset.mem (f "ts" "b") b1);
  A.(check bool) "keep does not" false (Varset.mem (f "ts" "keep") b1)

let test_reduction_globals_excluded () =
  let _, _, rc = analyze pipeline_src in
  for i = 0 to Reqcomm.segment_count rc do
    let b = Reqcomm.reqcomm_into rc i in
    A.(check bool)
      (Printf.sprintf "no acc at b%d" i)
      false
      (Varset.mem (f "acc" "x") b || Varset.mem (v "acc") b)
  done

let test_config_globals_excluded () =
  let _, _, rc =
    analyze
      {|
int threshold = 10;
pipelined (p in [0 : 2]) {
  List<int> xs = read_xs(p);
  int n = 0;
  foreach (x in xs where x < threshold) { n = n + 1; }
  emit(n);
}
|}
  in
  let b1 = Reqcomm.reqcomm_into rc 1 in
  A.(check bool) "threshold broadcast, not streamed" false
    (Varset.mem (v "threshold") b1)

let test_reqcomm_correct_when_boundary_skipped () =
  (* the paper's §4.2 observation: ReqComm(b_i) stays valid when later
     candidate boundaries are not selected; concretely ReqComm(b1) must
     include everything segment 3 needs that segment 1 and 2 don't
     produce *)
  let _, _, rc = analyze pipeline_src in
  let b1 = Reqcomm.reqcomm_into rc 1 in
  (* local.x is produced in segment 2 (decl) — not needed at b1 *)
  A.(check bool) "local produced downstream" false (Varset.mem (f "local" "x") b1)

let test_seg_metadata () =
  let _, _, rc = analyze pipeline_src in
  let si = rc.Reqcomm.segs.(3) in
  A.(check bool) "merge touches acc" true
    (Reqcomm.S.mem "acc" si.Reqcomm.si_reduc_state);
  let si0 = rc.Reqcomm.segs.(0) in
  A.(check bool) "read calls extern" true
    (Reqcomm.S.mem "read_ts" si0.Reqcomm.si_externs)

let test_first_consumer () =
  let _, _, rc = analyze pipeline_src in
  (* after boundary 1, ts.keep is first consumed by segment 1 (the
     compaction), ts.a by segment 1 too (via sel.add copying fields) *)
  A.(check (option int)) "keep consumer" (Some 1)
    (Reqcomm.first_consumer rc 1 (f "ts" "keep"));
  (* local.x first consumed by the merge (segment 3) *)
  A.(check (option int)) "local.x consumer" (Some 3)
    (Reqcomm.first_consumer rc 3 (f "local" "x"))

let test_segments_calling () =
  let _, _, rc = analyze pipeline_src in
  let module S = Set.Make (String) in
  A.(check (list int)) "read pinned" [ 0 ]
    (Reqcomm.segments_calling rc (S.singleton "read_ts"))

let suite =
  [
    ("backward propagation", `Quick, test_backward_propagation);
    ("narrow to used fields", `Quick, test_narrowing_to_used_fields);
    ("reduction globals excluded", `Quick, test_reduction_globals_excluded);
    ("config globals excluded", `Quick, test_config_globals_excluded);
    ("valid when boundary skipped", `Quick, test_reqcomm_correct_when_boundary_skipped);
    ("segment metadata", `Quick, test_seg_metadata);
    ("first consumer", `Quick, test_first_consumer);
    ("segments_calling", `Quick, test_segments_calling);
  ]

let () = Alcotest.run "reqcomm" [ ("reqcomm", suite) ]
