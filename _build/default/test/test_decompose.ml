(* Tests for the cost model (§4.3) and the decomposition algorithms
   (§4.4): the Figure 3 dynamic program, its O(m)-space variant, the
   bottleneck search, and the brute-force oracle. *)

module A = Alcotest
open Core

let mk_pipeline ?(latency = 0.0) powers bandwidths =
  Costmodel.make_pipeline ~powers ~bandwidths ~latency ()

let mk_profile ~task ~vol_out ~packets = { Costmodel.task; vol_out; packets }

let test_cost_comp_comm () =
  let u = { Costmodel.power = 100.0 } in
  A.(check (float 1e-12)) "comp" 2.0 (Costmodel.cost_comp u 200.0);
  let l = { Costmodel.bandwidth = 50.0; latency = 0.5 } in
  A.(check (float 1e-12)) "comm" 2.5 (Costmodel.cost_comm l 100.0)

let test_stage_times () =
  let p = mk_pipeline [| 10.0; 10.0; 10.0 |] [| 100.0; 100.0 |] in
  let profile =
    mk_profile ~task:[| 10.0; 20.0; 30.0 |] ~vol_out:[| 50.0; 100.0; 10.0 |]
      ~packets:5
  in
  let st = Costmodel.stage_times p profile [| 1; 2; 3 |] in
  A.(check (array (float 1e-9))) "unit times" [| 1.0; 2.0; 3.0 |] st.Costmodel.unit_time;
  (* link 1 carries segment 0's output, link 2 segment 1's *)
  A.(check (array (float 1e-9))) "link times" [| 0.5; 1.0 |] st.Costmodel.link_time

let test_total_time_formula () =
  let p = mk_pipeline [| 10.0; 10.0 |] [| 100.0 |] in
  let profile = mk_profile ~task:[| 10.0; 20.0 |] ~vol_out:[| 50.0; 10.0 |] ~packets:4 in
  let a = [| 1; 2 |] in
  (* stages: 1.0, 2.0 compute; 0.5 link; bottleneck 2.0, fill 3.5 *)
  A.(check (float 1e-9)) "total" ((3.0 *. 2.0) +. 3.5)
    (Costmodel.total_time p profile a);
  A.(check (float 1e-9)) "latency" 3.5 (Costmodel.latency_time p profile a)

let test_assignment_validation () =
  let p = mk_pipeline [| 1.0; 1.0 |] [| 1.0 |] in
  let profile = mk_profile ~task:[| 1.0; 1.0 |] ~vol_out:[| 1.0; 1.0 |] ~packets:2 in
  A.check_raises "decreasing rejected"
    (Invalid_argument "assignment must be nondecreasing") (fun () ->
      ignore (Costmodel.stage_times p profile [| 2; 1 |]));
  A.check_raises "out of range rejected"
    (Invalid_argument "assignment unit out of range") (fun () ->
      ignore (Costmodel.stage_times p profile [| 1; 3 |]))

(* --- DP (Figure 3) --- *)

let random_instance seed =
  let st = Random.State.make [| seed |] in
  let n1 = 2 + Random.State.int st 5 in
  let m = 2 + Random.State.int st 3 in
  let task = Array.init n1 (fun _ -> 1.0 +. Random.State.float st 100.0) in
  let vol_out = Array.init n1 (fun _ -> Random.State.float st 200.0) in
  let powers = Array.init m (fun _ -> 10.0 +. Random.State.float st 90.0) in
  let bandwidths = Array.init (m - 1) (fun _ -> 10.0 +. Random.State.float st 500.0) in
  let p = mk_pipeline ~latency:(Random.State.float st 0.1) powers bandwidths in
  let profile = mk_profile ~task ~vol_out ~packets:(2 + Random.State.int st 20) in
  (p, profile)

let prop_dp_matches_brute_force =
  QCheck.Test.make ~name:"Fig.3 DP is optimal for the latency objective"
    ~count:150 QCheck.small_int (fun seed ->
      let p, profile = random_instance seed in
      let dp = Decompose.dp p profile in
      let bf = Decompose.brute_force ~objective:`Latency p profile in
      abs_float (dp.Decompose.latency -. bf.Decompose.latency) < 1e-6)

let prop_rowwise_matches_dp =
  QCheck.Test.make ~name:"O(m)-space DP computes the same value" ~count:150
    QCheck.small_int (fun seed ->
      let p, profile = random_instance seed in
      let dp = Decompose.dp p profile in
      let v = Decompose.dp_value_rowwise p profile in
      abs_float (dp.Decompose.latency -. v) < 1e-6)

let prop_bottleneck_matches_brute_force =
  QCheck.Test.make ~name:"bottleneck search is optimal for total time"
    ~count:150 QCheck.small_int (fun seed ->
      let p, profile = random_instance seed in
      let b = Decompose.bottleneck p profile in
      let bf = Decompose.brute_force ~objective:`Total p profile in
      abs_float (b.Decompose.total -. bf.Decompose.total) < 1e-6)

let prop_dp_assignment_cost_consistent =
  QCheck.Test.make ~name:"DP's reported latency equals its assignment's cost"
    ~count:150 QCheck.small_int (fun seed ->
      let p, profile = random_instance seed in
      let dp = Decompose.dp p profile in
      let recomputed = Costmodel.latency_time p profile dp.Decompose.assignment in
      abs_float (dp.Decompose.latency -. recomputed) < 1e-6)

let test_dp_prefers_local_merge_under_slow_link () =
  (* heavy output of segment 0, cheap segment 1: with a slow link the DP
     keeps both on unit 1 (communicating the small final result instead) *)
  let p = mk_pipeline [| 100.0; 100.0 |] [| 1.0 |] in
  let profile = mk_profile ~task:[| 100.0; 10.0 |] ~vol_out:[| 1000.0; 1.0 |] ~packets:10 in
  let cons = { Decompose.pin_first = [ 0 ]; pin_last = [] } in
  let r = Decompose.dp ~cons p profile in
  A.(check (array int)) "both on unit 1" [| 1; 1 |] r.Decompose.assignment

let test_dp_offloads_under_fast_link () =
  (* slow first unit, fast link: push work downstream *)
  let p = mk_pipeline [| 1.0; 1000.0 |] [| 1_000_000.0 |] in
  let profile = mk_profile ~task:[| 1.0; 1000.0 |] ~vol_out:[| 8.0; 1.0 |] ~packets:10 in
  let cons = { Decompose.pin_first = [ 0 ]; pin_last = [] } in
  let r = Decompose.dp ~cons p profile in
  A.(check (array int)) "second segment offloaded" [| 1; 2 |] r.Decompose.assignment

let test_pinning_constraints () =
  let p = mk_pipeline [| 1.0; 1000.0; 1000.0 |] [| 1e6; 1e6 |] in
  let profile =
    mk_profile ~task:[| 5.0; 5.0; 5.0 |] ~vol_out:[| 8.0; 8.0; 1.0 |] ~packets:4
  in
  let cons = { Decompose.pin_first = [ 0 ]; pin_last = [ 2 ] } in
  let r = Decompose.dp ~cons p profile in
  A.(check int) "seg0 on C1" 1 r.Decompose.assignment.(0);
  A.(check int) "seg2 on C3" 3 r.Decompose.assignment.(2);
  let rb = Decompose.bottleneck ~cons p profile in
  A.(check int) "bottleneck seg0 on C1" 1 rb.Decompose.assignment.(0);
  A.(check int) "bottleneck seg2 on C3" 3 rb.Decompose.assignment.(2)

let test_bottleneck_spreads_uniform_load () =
  (* equal tasks, cheap comm: steady-state optimum spreads the stages
     while the latency DP would co-locate them *)
  let p = mk_pipeline [| 10.0; 10.0; 10.0 |] [| 1e9; 1e9 |] in
  let profile =
    mk_profile ~task:[| 10.0; 10.0; 10.0 |] ~vol_out:[| 1.0; 1.0; 0.1 |] ~packets:100
  in
  let r = Decompose.bottleneck p profile in
  A.(check (array int)) "spread" [| 1; 2; 3 |] r.Decompose.assignment;
  let dp = Decompose.dp p profile in
  A.(check bool) "bottleneck total <= dp total" true
    (r.Decompose.total <= dp.Decompose.total +. 1e-9)

let test_default_assignment () =
  A.(check (array int)) "m=3" [| 1; 2; 2; 2 |]
    (Decompose.default_assignment ~m:3 ~segments:4);
  A.(check (array int)) "m=2" [| 1; 2; 2 |]
    (Decompose.default_assignment ~m:2 ~segments:3)

let test_infeasible_constraints () =
  let p = mk_pipeline [| 1.0; 1.0 |] [| 1.0 |] in
  let profile = mk_profile ~task:[| 1.0; 1.0 |] ~vol_out:[| 1.0; 1.0 |] ~packets:2 in
  (* segment 1 pinned to C1 but segment 0 pinned to C2 is impossible with
     a nondecreasing assignment *)
  let cons = { Decompose.pin_first = [ 1 ]; pin_last = [ 0 ] } in
  A.check_raises "infeasible"
    (Invalid_argument "dp: constraints made the problem infeasible") (fun () ->
      ignore (Decompose.dp ~cons p profile))

(* Hand-computed Figure 3 table on a 2-segment, 2-unit instance:
   powers 10 and 20; link 100 B/s, no latency; tasks 40 and 60;
   vol_out 200 and 10 (the final result).

   T[1,1] = 40/10 = 4
   T[1,2] = min(T[1,1] + 200/100, T[0,2] + 40/20) = min(6, 2) = 2
   T[2,1] = T[1,1] + 60/10 = 10
   T[2,2] = min(T[2,1] + 10/100, T[1,2] + 60/20) = min(10.1, 5) = 5 *)
let test_dp_table_by_hand () =
  let p = mk_pipeline [| 10.0; 20.0 |] [| 100.0 |] in
  let profile = mk_profile ~task:[| 40.0; 60.0 |] ~vol_out:[| 200.0; 10.0 |] ~packets:3 in
  let r = Decompose.dp p profile in
  A.(check (float 1e-9)) "T[1,1]" 4.0 r.Decompose.table.(0).(0);
  A.(check (float 1e-9)) "T[1,2]" 2.0 r.Decompose.table.(0).(1);
  A.(check (float 1e-9)) "T[2,1]" 10.0 r.Decompose.table.(1).(0);
  A.(check (float 1e-9)) "T[2,2]" 5.0 r.Decompose.table.(1).(1);
  A.(check (float 1e-9)) "optimum" 5.0 r.Decompose.latency;
  (* the optimum computes both segments on C2 (free teleport, Fig. 3's
     base case: no pinning here) *)
  A.(check (array int)) "assignment" [| 2; 2 |] r.Decompose.assignment

let suite =
  [
    ("cost comp/comm", `Quick, test_cost_comp_comm);
    ("dp table by hand", `Quick, test_dp_table_by_hand);
    ("stage times", `Quick, test_stage_times);
    ("total time formula", `Quick, test_total_time_formula);
    ("assignment validation", `Quick, test_assignment_validation);
    ("slow link keeps merge local", `Quick, test_dp_prefers_local_merge_under_slow_link);
    ("fast link offloads", `Quick, test_dp_offloads_under_fast_link);
    ("pinning constraints", `Quick, test_pinning_constraints);
    ("bottleneck spreads uniform load", `Quick, test_bottleneck_spreads_uniform_load);
    ("default assignment", `Quick, test_default_assignment);
    ("infeasible constraints", `Quick, test_infeasible_constraints);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_dp_matches_brute_force;
        prop_rowwise_matches_dp;
        prop_bottleneck_matches_brute_force;
        prop_dp_assignment_cost_consistent;
      ]

let () = Alcotest.run "decompose" [ ("decompose", suite) ]
