(* Tests for candidate boundary selection and loop fission (§4.1). *)

module A = Alcotest
open Core
open Lang

let prog_of body =
  Parser.parse
    (Printf.sprintf
       {|
class T { float a; float b; bool keep; }
class R implements Reducinterface {
  int n;
  void merge(R other) { this.n = this.n + other.n; }
}
float work(float x) { return x * 2.0; }
R acc = new R();
pipelined (p in [0 : 4]) { %s }
|}
       body)

let segment_labels body =
  let prog = prog_of body in
  Boundary.segments_of_body prog.Ast.pipeline.Ast.pd_body
  |> List.map (fun s -> s.Boundary.seg_label)

let test_plain_glued () =
  (* plain statements glue onto the next boundary-worthy statement *)
  let labels =
    segment_labels
      "int x = 1; int y = x + 2; foreach (i in [0 : 10]) { y = y + 0; } \
       acc.merge(acc);"
  in
  A.(check (list string)) "labels" [ "foreach [0 : 10]"; "call merge" ] labels

let test_trailing_tail_segment () =
  let labels =
    segment_labels "foreach (i in [0 : 10]) { int z = i; } int w = 3;"
  in
  A.(check (list string)) "labels" [ "foreach [0 : 10]"; "tail" ] labels

let test_call_decl_is_boundary () =
  (* a declaration initialized by a user-function call is a candidate
     (start/end of a function call) *)
  let labels =
    segment_labels "float v = work(1.0); foreach (i in [0 : 2]) { v = v + 0.0; }"
  in
  A.(check int) "two segments" 2 (List.length labels)

let test_builtin_call_not_boundary () =
  let labels =
    segment_labels
      "float v = sqrt(2.0); foreach (i in [0 : 2]) { v = v + 0.0; }"
  in
  A.(check int) "one segment" 1 (List.length labels)

let test_conditional_atomic () =
  let labels =
    segment_labels
      "int x = 0; if (x > 0) { x = 1; } foreach (i in [0 : 2]) { x = x + 0; }"
  in
  A.(check (list string)) "labels" [ "if (x > 0)"; "foreach [0 : 2]" ] labels

let test_while_atomic () =
  let labels = segment_labels "int x = 0; while (x < 3) { x = x + 1; }" in
  A.(check (list string)) "labels" [ "while" ] labels

(* --- fission --- *)

let fission_count body =
  let prog = prog_of body in
  Boundary.fission_body prog.Ast.pipeline.Ast.pd_body
  |> List.filter (fun (st : Ast.stmt) ->
         match st.Ast.s with Ast.Sforeach _ -> true | _ -> false)
  |> List.length

let test_fission_independent_stmts () =
  (* two independent element-field writes can be fissioned *)
  let n =
    fission_count
      "List<T> ts = read_ts(p); foreach (t in ts) { t.a = t.a * 2.0; t.b = \
       t.b + 1.0; }"
  in
  A.(check int) "split into 2" 2 n

let test_no_fission_across_local () =
  (* a scalar local live across the split point blocks fission *)
  let n =
    fission_count
      "List<T> ts = read_ts(p); foreach (t in ts) { float d = t.a * 2.0; t.b \
       = d; }"
  in
  A.(check int) "kept whole" 1 n

let test_no_fission_across_outer_write_read () =
  (* writing an outer scalar then reading it would reorder across
     elements; fission must not split there *)
  let n =
    fission_count
      "float s = 0.0; List<T> ts = read_ts(p); foreach (t in ts) { s = t.a; \
       t.b = s; }"
  in
  A.(check int) "kept whole" 1 n

let test_fission_preserves_semantics () =
  (* run the same program with a hand-fissioned body and compare *)
  let src body =
    Printf.sprintf
      {|
class R implements Reducinterface {
  float x;
  void merge(R other) { this.x = this.x + other.x; }
}
R acc = new R();
pipelined (p in [0 : 3]) {
  List<float> xs = new List<float>();
  foreach (i in [0 : 5]) { xs.add(float_of_int(i + p)); }
  R local = new R();
  %s
  acc.merge(local);
}
|}
      body
  in
  let run body =
    let prog = Parser.parse (src body) in
    Typecheck.check prog;
    let ctx = Interp.create_ctx prog in
    let genv = Interp.run_reference ctx in
    match Interp.global_value genv "acc" with
    | Value.Vobject o -> Value.as_float (Value.field o "x")
    | _ -> A.fail "expected object"
  in
  let fused = run "foreach (x in xs) { local.x += x; local.x += x * 2.0; }" in
  let prog = Parser.parse (src "foreach (x in xs) { local.x += x; local.x += x * 2.0; }") in
  Typecheck.check prog;
  (* mechanically fission and re-run through the interpreter *)
  let fissioned_body = Boundary.fission_body prog.Ast.pipeline.Ast.pd_body in
  let prog' =
    {
      prog with
      Ast.pipeline = { prog.Ast.pipeline with Ast.pd_body = fissioned_body };
    }
  in
  let ctx = Interp.create_ctx prog' in
  let genv = Interp.run_reference ctx in
  let fissioned =
    match Interp.global_value genv "acc" with
    | Value.Vobject o -> Value.as_float (Value.field o "x")
    | _ -> A.fail "expected object"
  in
  A.(check (float 1e-9)) "fission preserves result" fused fissioned

let test_split_points_basic () =
  let prog =
    prog_of
      "List<T> ts = read_ts(p); foreach (t in ts) { t.a = 1.0; t.b = 2.0; \
       t.keep = true; }"
  in
  match
    List.filter_map
      (fun (st : Ast.stmt) ->
        match st.Ast.s with Ast.Sforeach fe -> Some fe | _ -> None)
      prog.Ast.pipeline.Ast.pd_body
  with
  | [ fe ] ->
      A.(check (list int)) "all gaps legal" [ 1; 2 ] (Boundary.foreach_split_points fe)
  | _ -> A.fail "expected one foreach"

let suite =
  [
    ("plain stmts glued", `Quick, test_plain_glued);
    ("trailing tail segment", `Quick, test_trailing_tail_segment);
    ("call decl is boundary", `Quick, test_call_decl_is_boundary);
    ("builtin call not boundary", `Quick, test_builtin_call_not_boundary);
    ("conditional atomic", `Quick, test_conditional_atomic);
    ("while atomic", `Quick, test_while_atomic);
    ("fission independent stmts", `Quick, test_fission_independent_stmts);
    ("no fission across local", `Quick, test_no_fission_across_local);
    ("no fission across outer flow", `Quick, test_no_fission_across_outer_write_read);
    ("fission preserves semantics", `Quick, test_fission_preserves_semantics);
    ("split points basic", `Quick, test_split_points_basic);
  ]

let () = Alcotest.run "boundary" [ ("boundary", suite) ]
