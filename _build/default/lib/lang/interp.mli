(** Tree-walking interpreter for PipeLang with operation accounting.

    Two uses: reference execution of whole programs (the sequential
    semantics every decomposed execution is checked against), and
    execution of individual filter code segments by the generated
    filters, over environments unpacked from stream buffers.  Every
    executed operation is charged to the context's counter. *)

type ctx = {
  prog : Ast.program;
  externs : (string, extern_fn) Hashtbl.t;
  runtime_defs : (string, int) Hashtbl.t;
  counter : Opcount.t;
}

(** Host-provided functions receive the context so they can charge
    operation costs (e.g. per byte read) and consult runtime defines. *)
and extern_fn = ctx -> Value.t list -> Value.t

(** Mutable lexical environment: a chain of scopes. *)
type scope = (string, Value.t ref) Hashtbl.t

type env = scope list

val create_ctx :
  ?externs:(string * extern_fn) list ->
  ?runtime_defs:(string * int) list ->
  Ast.program ->
  ctx

val set_runtime_define : ctx -> string -> int -> unit

val new_env : unit -> env
val push_scope : env -> env

(** Bind in the innermost scope (replacing any same-name binding
    there). *)
val bind : env -> string -> Value.t -> unit

(** @raise Value.Runtime_error when unbound. *)
val lookup : env -> string -> Value.t

(** Evaluate an expression.  @raise Value.Runtime_error on dynamic
    errors. *)
val eval : ctx -> env -> Ast.expr -> Value.t

(** Call a program function, builtin or extern by name. *)
val call_function : ctx -> string -> Value.t list -> Value.t

(** Invoke a method on an object or list value. *)
val call_method : ctx -> Value.t -> string -> Value.t list -> Value.t

(** Execute one statement in the given environment. *)
val exec : ctx -> env -> Ast.stmt -> unit

(** Execute statements without opening a new scope: declarations persist
    in [env]'s innermost scope — the entry point generated filters use on
    their code segments. *)
val exec_stmts : ctx -> env -> Ast.stmt list -> unit

(** Evaluate the top-level global declarations in order, returning the
    global environment (reduction globals accumulate across packets). *)
val init_globals : ctx -> env

(** Run the whole pipelined loop sequentially: the reference semantics.
    Returns the global environment after the last packet. *)
val run_reference : ctx -> env

val global_value : env -> string -> Value.t
