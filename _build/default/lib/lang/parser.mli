(** Recursive-descent parser for PipeLang.

    All entry points raise {!Srcloc.Error} on syntax errors, with the
    location of the offending token. *)

(** Parse a full compilation unit: class declarations, functions, global
    declarations and exactly one [pipelined] loop. *)
val parse : ?file:string -> string -> Ast.program

(** Parse a single expression (testing helper). *)
val parse_expr_string : ?file:string -> string -> Ast.expr

(** Parse a statement list (testing helper). *)
val parse_stmts_string : ?file:string -> string -> Ast.stmt list
