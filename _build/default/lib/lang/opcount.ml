(* Operation counters.

   The paper's cost model (§4.3) estimates computation time from "the
   number of floating point and integer operations in the code".  The
   interpreter charges every executed operation to a counter; the compiler
   profiles each candidate filter on sample packets to obtain per-segment
   operation counts, which the cost model divides by the computing unit's
   power. *)

type t = {
  mutable int_ops : int;
  mutable float_ops : int;
  mutable mem_ops : int;     (* field/array loads and stores *)
  mutable branch_ops : int;  (* conditionals, loop iterations *)
  mutable calls : int;
  mutable appends : int;     (* list appends, i.e. output-element creation *)
  mutable allocs : int;
}

let create () =
  {
    int_ops = 0;
    float_ops = 0;
    mem_ops = 0;
    branch_ops = 0;
    calls = 0;
    appends = 0;
    allocs = 0;
  }

let reset t =
  t.int_ops <- 0;
  t.float_ops <- 0;
  t.mem_ops <- 0;
  t.branch_ops <- 0;
  t.calls <- 0;
  t.appends <- 0;
  t.allocs <- 0

let copy t = { t with int_ops = t.int_ops }

let add ~into t =
  into.int_ops <- into.int_ops + t.int_ops;
  into.float_ops <- into.float_ops + t.float_ops;
  into.mem_ops <- into.mem_ops + t.mem_ops;
  into.branch_ops <- into.branch_ops + t.branch_ops;
  into.calls <- into.calls + t.calls;
  into.appends <- into.appends + t.appends;
  into.allocs <- into.allocs + t.allocs

let diff ~after ~before =
  {
    int_ops = after.int_ops - before.int_ops;
    float_ops = after.float_ops - before.float_ops;
    mem_ops = after.mem_ops - before.mem_ops;
    branch_ops = after.branch_ops - before.branch_ops;
    calls = after.calls - before.calls;
    appends = after.appends - before.appends;
    allocs = after.allocs - before.allocs;
  }

(* Weighted total operation count.  Floating-point operations are charged
   more than integer ALU operations; memory and branch operations have
   unit cost.  The weights are the knobs of the cost model, not of the
   analysis: decomposition only depends on ratios. *)
type weights = {
  w_int : float;
  w_float : float;
  w_mem : float;
  w_branch : float;
  w_call : float;
  w_append : float;
  w_alloc : float;
}

let default_weights =
  {
    w_int = 1.0;
    w_float = 2.0;
    w_mem = 1.0;
    w_branch = 1.0;
    w_call = 2.0;
    w_append = 4.0;
    w_alloc = 6.0;
  }

let weighted ?(weights = default_weights) t =
  (float_of_int t.int_ops *. weights.w_int)
  +. (float_of_int t.float_ops *. weights.w_float)
  +. (float_of_int t.mem_ops *. weights.w_mem)
  +. (float_of_int t.branch_ops *. weights.w_branch)
  +. (float_of_int t.calls *. weights.w_call)
  +. (float_of_int t.appends *. weights.w_append)
  +. (float_of_int t.allocs *. weights.w_alloc)

let total t =
  t.int_ops + t.float_ops + t.mem_ops + t.branch_ops + t.calls + t.appends
  + t.allocs

let pp ppf t =
  Fmt.pf ppf "{int=%d float=%d mem=%d branch=%d call=%d append=%d alloc=%d}"
    t.int_ops t.float_ops t.mem_ops t.branch_ops t.calls t.appends t.allocs
