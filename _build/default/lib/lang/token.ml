(* Tokens of the PipeLang dialect.  The dialect is the Java-like language of
   the paper: classes (optionally implementing [Reducinterface]), functions,
   rectdomains, [foreach] loops and a [pipelined] loop over packets. *)

type t =
  (* literals and identifiers *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_CLASS
  | KW_IMPLEMENTS
  | KW_REDUCINTERFACE
  | KW_INT
  | KW_FLOAT
  | KW_BOOL
  | KW_VOID
  | KW_STRING
  | KW_LIST
  | KW_RECTDOMAIN
  | KW_TRUE
  | KW_FALSE
  | KW_NULL
  | KW_IF
  | KW_ELSE
  | KW_FOR
  | KW_WHILE
  | KW_FOREACH
  | KW_IN
  | KW_WHERE
  | KW_PIPELINED
  | KW_RETURN
  | KW_NEW
  | KW_RUNTIME_DEFINE
  | KW_BREAK
  | KW_CONTINUE
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | COLON
  (* operators *)
  | ASSIGN        (* = *)
  | PLUS_ASSIGN   (* += *)
  | MINUS_ASSIGN  (* -= *)
  | STAR_ASSIGN   (* *= *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ            (* == *)
  | NE            (* != *)
  | AND           (* && *)
  | OR            (* || *)
  | NOT           (* ! *)
  | EOF

let keywords : (string * t) list =
  [
    ("class", KW_CLASS);
    ("implements", KW_IMPLEMENTS);
    ("Reducinterface", KW_REDUCINTERFACE);
    ("int", KW_INT);
    ("float", KW_FLOAT);
    ("double", KW_FLOAT); (* treated as float *)
    ("bool", KW_BOOL);
    ("boolean", KW_BOOL);
    ("void", KW_VOID);
    ("String", KW_STRING);
    ("List", KW_LIST);
    ("Rectdomain", KW_RECTDOMAIN);
    ("true", KW_TRUE);
    ("false", KW_FALSE);
    ("null", KW_NULL);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("for", KW_FOR);
    ("while", KW_WHILE);
    ("foreach", KW_FOREACH);
    ("in", KW_IN);
    ("where", KW_WHERE);
    ("pipelined", KW_PIPELINED);
    ("return", KW_RETURN);
    ("new", KW_NEW);
    ("runtime_define", KW_RUNTIME_DEFINE);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
  ]

let to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_CLASS -> "class"
  | KW_IMPLEMENTS -> "implements"
  | KW_REDUCINTERFACE -> "Reducinterface"
  | KW_INT -> "int"
  | KW_FLOAT -> "float"
  | KW_BOOL -> "bool"
  | KW_VOID -> "void"
  | KW_STRING -> "String"
  | KW_LIST -> "List"
  | KW_RECTDOMAIN -> "Rectdomain"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_NULL -> "null"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_FOR -> "for"
  | KW_WHILE -> "while"
  | KW_FOREACH -> "foreach"
  | KW_IN -> "in"
  | KW_WHERE -> "where"
  | KW_PIPELINED -> "pipelined"
  | KW_RETURN -> "return"
  | KW_NEW -> "new"
  | KW_RUNTIME_DEFINE -> "runtime_define"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | COLON -> ":"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | AND -> "&&"
  | OR -> "||"
  | NOT -> "!"
  | EOF -> "<eof>"
