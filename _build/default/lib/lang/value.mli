(** Runtime values of the PipeLang interpreter. *)

(** Growable vector, used for [List<T>] collections. *)
module Vec : sig
  type 'a t

  val create : unit -> 'a t
  val of_list : 'a list -> 'a t
  val length : 'a t -> int

  (** @raise Invalid_argument on out-of-bounds access. *)
  val get : 'a t -> int -> 'a

  val set : 'a t -> int -> 'a -> unit
  val push : 'a t -> 'a -> unit
  val clear : 'a t -> unit
  val iter : ('a -> unit) -> 'a t -> unit
  val to_list : 'a t -> 'a list
  val map : ('a -> 'b) -> 'a t -> 'b t
end

type t =
  | Vunit
  | Vnull
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Vstring of string
  | Varray of t array
  | Vlist of t Vec.t
  | Vobject of obj
  | Vrange of int * int  (** [lo : hi), a 1-d rectdomain *)

and obj = { ocls : string; ofields : (string, t) Hashtbl.t }

val type_name : t -> string

(** Raised on dynamic errors (type confusion, bounds, division by
    zero, unbound names). *)
exception Runtime_error of string

val runtime_errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Checked projections; [as_float] widens ints implicitly. *)

val as_int : t -> int
val as_float : t -> float
val as_bool : t -> bool
val as_string : t -> string
val as_array : t -> t array
val as_list : t -> t Vec.t
val as_object : t -> obj

(** @raise Runtime_error when the field does not exist. *)
val field : obj -> string -> t

val set_field : obj -> string -> t -> unit

(** The default (zero) value of a declared type: numeric zeros, empty
    lists, [Vnull] for classes and arrays. *)
val zero_of_ty : Ast.ty -> t

(** A fresh object of the class with all fields zero-initialized. *)
val make_object : Ast.class_decl -> obj

(** Structural deep copy (arrays, lists and objects are duplicated). *)
val deep_copy : t -> t

(** Structural equality (lists compare in order). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
