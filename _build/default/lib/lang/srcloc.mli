(** Source locations and located errors for the PipeLang front end. *)

type t = {
  file : string;  (** compilation unit name *)
  line : int;     (** 1-based line *)
  col : int;      (** 0-based column *)
}

(** A placeholder location for synthesized nodes. *)
val dummy : t

val make : file:string -> line:int -> col:int -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Raised by every front-end phase (lexer, parser, type checker) on a
    user error, carrying the offending location. *)
exception Error of t * string

(** [errorf loc fmt ...] raises {!Error} with a formatted message. *)
val errorf : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
