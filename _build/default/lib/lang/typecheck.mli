(** Type checker for PipeLang.

    Checks a whole program against the usual Java-like rules (with
    implicit int-to-float widening) and annotates every expression with
    its type.  Reduction classes must declare
    [void merge(C other)] — the runtime relies on it to combine
    per-packet and per-copy partial results. *)

(** Signature of a host-provided function (data source or sink). *)
type extern_sig = {
  ex_name : string;
  ex_params : Ast.ty list;
  ex_ret : Ast.ty;
}

(** The built-in math/conversion functions every program may call:
    [sqrt], [fabs], [sin], [cos], [floor], [ceil], [fmin], [fmax],
    [imin], [imax], [iabs], [int_of_float], [float_of_int], [print]. *)
val builtin_externs : extern_sig list

(** [check ?externs prog] type checks the program, raising
    {!Srcloc.Error} on the first violation.  [externs] declares the host
    functions available on top of {!builtin_externs}. *)
val check : ?externs:extern_sig list -> Ast.program -> unit
