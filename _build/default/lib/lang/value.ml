(* Runtime values of the PipeLang interpreter. *)

(* Growable vector used for List<T> collections (output collections that
   foreach bodies append to). *)
module Vec = struct
  type 'a t = { mutable items : 'a array; mutable len : int }

  let create () = { items = [||]; len = 0 }

  let of_list xs =
    let items = Array.of_list xs in
    { items; len = Array.length items }

  let length v = v.len

  let get v i =
    if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
    v.items.(i)

  let set v i x =
    if i < 0 || i >= v.len then invalid_arg "Vec.set: index out of bounds";
    v.items.(i) <- x

  let push v x =
    if v.len = Array.length v.items then begin
      let cap = max 8 (2 * Array.length v.items) in
      let items = Array.make cap x in
      Array.blit v.items 0 items 0 v.len;
      v.items <- items
    end;
    v.items.(v.len) <- x;
    v.len <- v.len + 1

  let clear v = v.len <- 0

  let iter f v =
    for i = 0 to v.len - 1 do
      f v.items.(i)
    done

  let to_list v =
    let rec go i acc = if i < 0 then acc else go (i - 1) (v.items.(i) :: acc) in
    go (v.len - 1) []

  let map f v =
    let out = create () in
    iter (fun x -> push out (f x)) v;
    out
end

type t =
  | Vunit
  | Vnull
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Vstring of string
  | Varray of t array
  | Vlist of t Vec.t
  | Vobject of obj
  | Vrange of int * int (* [lo : hi), a 1-d rectdomain *)

and obj = { ocls : string; ofields : (string, t) Hashtbl.t }

let type_name = function
  | Vunit -> "void"
  | Vnull -> "null"
  | Vint _ -> "int"
  | Vfloat _ -> "float"
  | Vbool _ -> "bool"
  | Vstring _ -> "String"
  | Varray _ -> "array"
  | Vlist _ -> "List"
  | Vobject o -> o.ocls
  | Vrange _ -> "Rectdomain"

exception Runtime_error of string

let runtime_errorf fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let as_int = function
  | Vint n -> n
  | v -> runtime_errorf "expected int, got %s" (type_name v)

let as_float = function
  | Vfloat f -> f
  | Vint n -> float_of_int n (* implicit widening *)
  | v -> runtime_errorf "expected float, got %s" (type_name v)

let as_bool = function
  | Vbool b -> b
  | v -> runtime_errorf "expected bool, got %s" (type_name v)

let as_string = function
  | Vstring s -> s
  | v -> runtime_errorf "expected String, got %s" (type_name v)

let as_array = function
  | Varray a -> a
  | v -> runtime_errorf "expected array, got %s" (type_name v)

let as_list = function
  | Vlist l -> l
  | v -> runtime_errorf "expected List, got %s" (type_name v)

let as_object = function
  | Vobject o -> o
  | v -> runtime_errorf "expected object, got %s" (type_name v)

let field obj name =
  match Hashtbl.find_opt obj.ofields name with
  | Some v -> v
  | None -> runtime_errorf "object %s has no field %s" obj.ocls name

let set_field obj name v = Hashtbl.replace obj.ofields name v

(* Default (zero) value for a declared type. *)
let rec zero_of_ty (ty : Ast.ty) =
  match ty with
  | Ast.Tint -> Vint 0
  | Ast.Tfloat -> Vfloat 0.0
  | Ast.Tbool -> Vbool false
  | Ast.Tstring -> Vstring ""
  | Ast.Tvoid -> Vunit
  | Ast.Tarray _ -> Vnull
  | Ast.Tlist _ -> Vlist (Vec.create ())
  | Ast.Trectdomain -> Vrange (0, 0)
  | Ast.Tclass _ -> Vnull

and make_object cls_decl =
  let ofields = Hashtbl.create 8 in
  List.iter
    (fun (ty, name) -> Hashtbl.replace ofields name (zero_of_ty ty))
    cls_decl.Ast.cd_fields;
  { ocls = cls_decl.Ast.cd_name; ofields }

(* Structural deep copy.  Used when a value crosses a filter boundary in
   value form (tests and the reference evaluator); the production path
   serializes through byte buffers instead. *)
let rec deep_copy = function
  | (Vunit | Vnull | Vint _ | Vfloat _ | Vbool _ | Vstring _ | Vrange _) as v
    ->
      v
  | Varray a -> Varray (Array.map deep_copy a)
  | Vlist l -> Vlist (Vec.map deep_copy l)
  | Vobject o ->
      let ofields = Hashtbl.create (Hashtbl.length o.ofields) in
      Hashtbl.iter (fun k v -> Hashtbl.replace ofields k (deep_copy v)) o.ofields;
      Vobject { ocls = o.ocls; ofields }

(* Structural equality that treats lists as multisets is deliberately NOT
   provided here; [equal] is plain structural equality in order. *)
let rec equal a b =
  match (a, b) with
  | Vunit, Vunit | Vnull, Vnull -> true
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vstring x, Vstring y -> String.equal x y
  | Vrange (a1, b1), Vrange (a2, b2) -> a1 = a2 && b1 = b2
  | Varray x, Varray y ->
      Array.length x = Array.length y
      && (let ok = ref true in
          Array.iteri (fun i v -> if not (equal v y.(i)) then ok := false) x;
          !ok)
  | Vlist x, Vlist y ->
      Vec.length x = Vec.length y
      && (let ok = ref true in
          for i = 0 to Vec.length x - 1 do
            if not (equal (Vec.get x i) (Vec.get y i)) then ok := false
          done;
          !ok)
  | Vobject x, Vobject y ->
      String.equal x.ocls y.ocls
      && Hashtbl.length x.ofields = Hashtbl.length y.ofields
      && Hashtbl.fold
           (fun k v acc ->
             acc
             && match Hashtbl.find_opt y.ofields k with
                | Some w -> equal v w
                | None -> false)
           x.ofields true
  | _ -> false

let rec pp ppf = function
  | Vunit -> Fmt.string ppf "()"
  | Vnull -> Fmt.string ppf "null"
  | Vint n -> Fmt.int ppf n
  | Vfloat f -> Fmt.float ppf f
  | Vbool b -> Fmt.bool ppf b
  | Vstring s -> Fmt.pf ppf "%S" s
  | Vrange (lo, hi) -> Fmt.pf ppf "[%d : %d]" lo hi
  | Varray a ->
      Fmt.pf ppf "[|%a|]" Fmt.(array ~sep:(any "; ") pp) a
  | Vlist l ->
      Fmt.pf ppf "List(%d)[%a]" (Vec.length l)
        Fmt.(list ~sep:(any "; ") pp)
        (Vec.to_list l)
  | Vobject o ->
      let fields =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) o.ofields []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Fmt.pf ppf "%s{%a}" o.ocls
        Fmt.(list ~sep:(any ", ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%a" k pp v))
        fields

let to_string v = Fmt.str "%a" pp v
