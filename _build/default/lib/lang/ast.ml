(* Abstract syntax of PipeLang, the Java-like dialect of the paper.

   The dialect exposes exactly the constructs the paper relies on:
   - [Rectdomain] collections with coordinates and [foreach] loops whose
     iteration order does not affect the result;
   - classes implementing [Reducinterface], i.e. reduction variables whose
     updates are associative and commutative;
   - a [pipelined] loop over packets, each processed independently except
     for reduction updates;
   - [runtime_define] for values fixed at run time (packet counts). *)

type ty =
  | Tint
  | Tfloat
  | Tbool
  | Tvoid
  | Tstring
  | Tarray of ty
  | Tlist of ty        (* growable output collection, iterable by foreach *)
  | Trectdomain        (* 1-d rectilinear index domain [lo : hi) *)
  | Tclass of string

let rec ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tbool -> "bool"
  | Tvoid -> "void"
  | Tstring -> "String"
  | Tarray t -> ty_to_string t ^ "[]"
  | Tlist t -> "List<" ^ ty_to_string t ^ ">"
  | Trectdomain -> "Rectdomain<1>"
  | Tclass c -> c

let rec ty_equal a b =
  match (a, b) with
  | Tint, Tint | Tfloat, Tfloat | Tbool, Tbool | Tvoid, Tvoid | Tstring, Tstring
  | Trectdomain, Trectdomain ->
      true
  | Tarray x, Tarray y | Tlist x, Tlist y -> ty_equal x y
  | Tclass x, Tclass y -> String.equal x y
  | _ -> false

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type unop = Neg | Not

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

type expr = { e : expr_desc; eloc : Srcloc.t; mutable ety : ty option }

and expr_desc =
  | Eint of int
  | Efloat of float
  | Ebool of bool
  | Estring of string
  | Enull
  | Evar of string
  | Efield of expr * string
  | Eindex of expr * expr
  | Ebinop of binop * expr * expr
  | Eunop of unop * expr
  | Ecall of string * expr list          (* global function or builtin *)
  | Emethod of expr * string * expr list (* method invocation *)
  | Enew of string * expr list           (* new C(args) *)
  | Enew_array of ty * expr              (* new t[n] *)
  | Enew_list of ty                      (* new List<t>() *)
  | Erange of expr * expr                (* [lo : hi] rectdomain literal *)
  | Eruntime_define of string            (* runtime_define name *)

type lvalue =
  | Lvar of string
  | Lfield of lvalue * string
  | Lindex of lvalue * expr

type stmt = { s : stmt_desc; sloc : Srcloc.t }

and stmt_desc =
  | Sdecl of ty * string * expr option
  | Sassign of lvalue * expr
  | Supdate of lvalue * binop * expr     (* l op= e; on a reduction variable
                                            this is an associative update *)
  | Sif of expr * stmt list * stmt list
  | Sfor of stmt * expr * stmt * stmt list
  | Swhile of expr * stmt list
  (* foreach (x in coll where cond) body.  [where] compacts the iteration
     to selected elements; it is the fission-friendly form of a guarding
     conditional inside a foreach. *)
  | Sforeach of foreach
  | Sexpr of expr
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

and foreach = {
  fe_var : string;
  fe_coll : expr;
  fe_where : expr option;
  fe_body : stmt list;
}

type func_decl = {
  fd_name : string;
  fd_params : (ty * string) list;
  fd_ret : ty;
  fd_body : stmt list;
  fd_loc : Srcloc.t;
}

type class_decl = {
  cd_name : string;
  cd_reduc : bool; (* implements Reducinterface *)
  cd_fields : (ty * string) list;
  cd_methods : func_decl list;
  cd_loc : Srcloc.t;
}

(* The single pipelined loop of a program: [pipelined (p in [0 :
   runtime_define num_packets]) { body }].  The body is the unit of
   decomposition into filters. *)
type pipeline_decl = {
  pd_var : string;         (* packet index variable *)
  pd_count : expr;         (* number of packets *)
  pd_body : stmt list;
  pd_loc : Srcloc.t;
}

(* A top-level variable, declared before the pipelined loop.  Globals of a
   class implementing [Reducinterface] are the cross-packet reduction
   variables of the paper: per-packet partial results are merged into them
   with associative/commutative [merge] calls. *)
type global_decl = {
  gd_ty : ty;
  gd_name : string;
  gd_init : expr option;
  gd_loc : Srcloc.t;
}

type program = {
  classes : class_decl list;
  funcs : func_decl list;
  globals : global_decl list;
  pipeline : pipeline_decl;
}

let find_class prog name = List.find_opt (fun c -> c.cd_name = name) prog.classes
let find_func prog name = List.find_opt (fun f -> f.fd_name = name) prog.funcs

let find_method cls name =
  List.find_opt (fun m -> m.fd_name = name) cls.cd_methods

let is_reduction_class prog name =
  match find_class prog name with Some c -> c.cd_reduc | None -> false

(* The base variable of an lvalue: the variable ultimately being written. *)
let rec lvalue_base = function
  | Lvar v -> v
  | Lfield (l, _) -> lvalue_base l
  | Lindex (l, _) -> lvalue_base l

let mk_expr ?(loc = Srcloc.dummy) e = { e; eloc = loc; ety = None }
let mk_stmt ?(loc = Srcloc.dummy) s = { s; sloc = loc }
