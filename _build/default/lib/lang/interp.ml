(* Tree-walking interpreter for PipeLang with operation accounting.

   Two uses:
   - reference execution of a whole program (sequential, one packet at a
     time) for correctness oracles;
   - execution of individual filter code segments by the generated
     filters, over environments unpacked from stream buffers.

   Every executed operation is charged to the context's [Opcount.t]; the
   compiler's profiling pass and the simulated cluster both read it. *)

open Ast
module V = Value

type ctx = {
  prog : program;
  externs : (string, extern_fn) Hashtbl.t;
  runtime_defs : (string, int) Hashtbl.t;
  counter : Opcount.t;
}

(* Host-provided functions (data sources, sinks).  They receive the
   context so they can charge operation costs (e.g. per element read)
   and consult runtime_defines (query parameters). *)
and extern_fn = ctx -> V.t list -> V.t

type scope = (string, V.t ref) Hashtbl.t
type env = scope list

exception Return_value of V.t
exception Break_loop
exception Continue_loop

let create_ctx ?(externs = []) ?(runtime_defs = []) prog =
  let ext = Hashtbl.create 16 in
  List.iter (fun (name, fn) -> Hashtbl.replace ext name fn) externs;
  let rd = Hashtbl.create 8 in
  List.iter (fun (name, v) -> Hashtbl.replace rd name v) runtime_defs;
  { prog; externs = ext; runtime_defs = rd; counter = Opcount.create () }

let set_runtime_define ctx name v = Hashtbl.replace ctx.runtime_defs name v

let new_env () : env = [ Hashtbl.create 16 ]
let push_scope (env : env) : env = Hashtbl.create 16 :: env

let bind (env : env) name v =
  match env with
  | [] -> assert false
  | scope :: _ -> Hashtbl.replace scope name (ref v)

let rec lookup_ref (env : env) name =
  match env with
  | [] -> V.runtime_errorf "unbound variable %s" name
  | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some r -> r
      | None -> lookup_ref rest name)

let lookup env name = !(lookup_ref env name)

let charge_int ctx = ctx.counter.Opcount.int_ops <- ctx.counter.Opcount.int_ops + 1
let charge_float ctx =
  ctx.counter.Opcount.float_ops <- ctx.counter.Opcount.float_ops + 1
let charge_mem ctx = ctx.counter.Opcount.mem_ops <- ctx.counter.Opcount.mem_ops + 1
let charge_branch ctx =
  ctx.counter.Opcount.branch_ops <- ctx.counter.Opcount.branch_ops + 1
let charge_call ctx = ctx.counter.Opcount.calls <- ctx.counter.Opcount.calls + 1
let charge_append ctx =
  ctx.counter.Opcount.appends <- ctx.counter.Opcount.appends + 1
let charge_alloc ctx = ctx.counter.Opcount.allocs <- ctx.counter.Opcount.allocs + 1

(* --- numeric helpers --- *)

let arith ctx op a b =
  match (a, b) with
  | V.Vint x, V.Vint y ->
      charge_int ctx;
      V.Vint
        (match op with
        | Add -> x + y
        | Sub -> x - y
        | Mul -> x * y
        | Div ->
            if y = 0 then V.runtime_errorf "integer division by zero" else x / y
        | Mod ->
            if y = 0 then V.runtime_errorf "integer modulo by zero" else x mod y
        | _ -> assert false)
  | (V.Vfloat _ | V.Vint _), (V.Vfloat _ | V.Vint _) ->
      charge_float ctx;
      let x = V.as_float a and y = V.as_float b in
      V.Vfloat
        (match op with
        | Add -> x +. y
        | Sub -> x -. y
        | Mul -> x *. y
        | Div -> x /. y
        | Mod -> Float.rem x y
        | _ -> assert false)
  | _ ->
      V.runtime_errorf "arithmetic on %s and %s" (V.type_name a) (V.type_name b)

let compare_vals ctx op a b =
  let r =
    match (a, b) with
    | V.Vint x, V.Vint y ->
        charge_int ctx;
        compare x y
    | (V.Vfloat _ | V.Vint _), (V.Vfloat _ | V.Vint _) ->
        charge_float ctx;
        compare (V.as_float a) (V.as_float b)
    | V.Vbool x, V.Vbool y ->
        charge_int ctx;
        compare x y
    | V.Vstring x, V.Vstring y ->
        charge_int ctx;
        String.compare x y
    | _ ->
        V.runtime_errorf "comparison between %s and %s" (V.type_name a)
          (V.type_name b)
  in
  V.Vbool
    (match op with
    | Lt -> r < 0
    | Le -> r <= 0
    | Gt -> r > 0
    | Ge -> r >= 0
    | Eq -> r = 0
    | Ne -> r <> 0
    | _ -> assert false)

let builtin ctx name args =
  let f1 op =
    match args with
    | [ a ] ->
        charge_float ctx;
        V.Vfloat (op (V.as_float a))
    | _ -> V.runtime_errorf "%s expects 1 argument" name
  in
  let f2 op =
    match args with
    | [ a; b ] ->
        charge_float ctx;
        V.Vfloat (op (V.as_float a) (V.as_float b))
    | _ -> V.runtime_errorf "%s expects 2 arguments" name
  in
  match name with
  | "sqrt" -> Some (f1 sqrt)
  | "fabs" -> Some (f1 abs_float)
  | "sin" -> Some (f1 sin)
  | "cos" -> Some (f1 cos)
  | "floor" -> Some (f1 floor)
  | "ceil" -> Some (f1 ceil)
  | "fmin" -> Some (f2 min)
  | "fmax" -> Some (f2 max)
  | "imin" -> (
      match args with
      | [ a; b ] ->
          charge_int ctx;
          Some (V.Vint (min (V.as_int a) (V.as_int b)))
      | _ -> V.runtime_errorf "imin expects 2 arguments")
  | "imax" -> (
      match args with
      | [ a; b ] ->
          charge_int ctx;
          Some (V.Vint (max (V.as_int a) (V.as_int b)))
      | _ -> V.runtime_errorf "imax expects 2 arguments")
  | "iabs" -> (
      match args with
      | [ a ] ->
          charge_int ctx;
          Some (V.Vint (abs (V.as_int a)))
      | _ -> V.runtime_errorf "iabs expects 1 argument")
  | "int_of_float" -> (
      match args with
      | [ a ] ->
          charge_int ctx;
          Some (V.Vint (int_of_float (V.as_float a)))
      | _ -> V.runtime_errorf "int_of_float expects 1 argument")
  | "float_of_int" -> (
      match args with
      | [ a ] ->
          charge_float ctx;
          Some (V.Vfloat (float_of_int (V.as_int a)))
      | _ -> V.runtime_errorf "float_of_int expects 1 argument")
  | "print" -> (
      match args with
      | [ a ] ->
          ignore a;
          (* reference runs are silent; hosts override via externs *)
          Some V.Vunit
      | _ -> V.runtime_errorf "print expects 1 argument")
  | _ -> None

(* --- evaluation --- *)

let rec eval ctx (env : env) (e : expr) : V.t =
  match e.e with
  | Eint n -> V.Vint n
  | Efloat f -> V.Vfloat f
  | Ebool b -> V.Vbool b
  | Estring s -> V.Vstring s
  | Enull -> V.Vnull
  | Eruntime_define name -> (
      match Hashtbl.find_opt ctx.runtime_defs name with
      | Some v -> V.Vint v
      | None -> V.runtime_errorf "runtime_define %s is not set" name)
  | Evar v -> lookup env v
  | Efield (o, f) -> (
      charge_mem ctx;
      match eval ctx env o with
      | V.Vobject obj -> V.field obj f
      | V.Varray a when f = "length" -> V.Vint (Array.length a)
      | v -> V.runtime_errorf "field .%s of non-object %s" f (V.type_name v))
  | Eindex (a, i) ->
      charge_mem ctx;
      let arr = V.as_array (eval ctx env a) in
      let idx = V.as_int (eval ctx env i) in
      if idx < 0 || idx >= Array.length arr then
        V.runtime_errorf "array index %d out of bounds [0, %d)" idx
          (Array.length arr);
      arr.(idx)
  | Ebinop (And, a, b) ->
      charge_branch ctx;
      if V.as_bool (eval ctx env a) then eval ctx env b else V.Vbool false
  | Ebinop (Or, a, b) ->
      charge_branch ctx;
      if V.as_bool (eval ctx env a) then V.Vbool true else eval ctx env b
  | Ebinop (((Add | Sub | Mul | Div | Mod) as op), a, b) ->
      arith ctx op (eval ctx env a) (eval ctx env b)
  | Ebinop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
      compare_vals ctx op (eval ctx env a) (eval ctx env b)
  | Eunop (Neg, a) -> (
      match eval ctx env a with
      | V.Vint n ->
          charge_int ctx;
          V.Vint (-n)
      | V.Vfloat f ->
          charge_float ctx;
          V.Vfloat (-.f)
      | v -> V.runtime_errorf "negation of %s" (V.type_name v))
  | Eunop (Not, a) ->
      charge_int ctx;
      V.Vbool (not (V.as_bool (eval ctx env a)))
  | Ecall (f, args) ->
      let argv = List.map (eval ctx env) args in
      call_function ctx f argv
  | Emethod (o, m, args) ->
      let recv = eval ctx env o in
      let argv = List.map (eval ctx env) args in
      call_method ctx recv m argv
  | Enew (c, args) -> (
      charge_alloc ctx;
      match find_class ctx.prog c with
      | None -> V.runtime_errorf "unknown class %s" c
      | Some cls ->
          let obj = V.make_object cls in
          let argv = List.map (eval ctx env) args in
          if argv <> [] then
            List.iter2
              (fun (_, fname) v -> V.set_field obj fname v)
              cls.cd_fields argv;
          V.Vobject obj)
  | Enew_array (t, n) ->
      charge_alloc ctx;
      let n = V.as_int (eval ctx env n) in
      if n < 0 then V.runtime_errorf "negative array size %d" n;
      V.Varray (Array.init n (fun _ -> V.zero_of_ty t))
  | Enew_list _ ->
      charge_alloc ctx;
      V.Vlist (V.Vec.create ())
  | Erange (lo, hi) ->
      let lo = V.as_int (eval ctx env lo) and hi = V.as_int (eval ctx env hi) in
      V.Vrange (lo, hi)

and call_function ctx f argv =
  charge_call ctx;
  match find_func ctx.prog f with
  | Some fd -> invoke ctx fd None argv
  | None -> (
      match builtin ctx f argv with
      | Some v -> v
      | None -> (
          match Hashtbl.find_opt ctx.externs f with
          | Some fn -> fn ctx argv
          | None -> V.runtime_errorf "unknown function %s" f))

and call_method ctx recv m argv =
  charge_call ctx;
  match recv with
  | V.Vlist l -> (
      match (m, argv) with
      | "add", [ v ] ->
          charge_append ctx;
          V.Vec.push l v;
          V.Vunit
      | "size", [] -> V.Vint (V.Vec.length l)
      | "get", [ V.Vint i ] -> V.Vec.get l i
      | "clear", [] ->
          V.Vec.clear l;
          V.Vunit
      | _ -> V.runtime_errorf "unknown List method %s/%d" m (List.length argv))
  | V.Vobject obj -> (
      match find_class ctx.prog obj.V.ocls with
      | None -> V.runtime_errorf "object of unknown class %s" obj.V.ocls
      | Some cls -> (
          match find_method cls m with
          | None -> V.runtime_errorf "class %s has no method %s" obj.V.ocls m
          | Some md -> invoke ctx md (Some recv) argv))
  | v -> V.runtime_errorf "method call .%s on %s" m (V.type_name v)

and invoke ctx fd self argv =
  let env = new_env () in
  (match self with None -> () | Some s -> bind env "this" s);
  (try List.iter2 (fun (_, name) v -> bind env name v) fd.fd_params argv
   with Invalid_argument _ ->
     V.runtime_errorf "%s: arity mismatch (%d expected, %d given)" fd.fd_name
       (List.length fd.fd_params) (List.length argv));
  try
    exec_block ctx env fd.fd_body;
    V.Vunit
  with Return_value v -> v

(* --- statements --- *)

and exec ctx (env : env) (st : stmt) =
  match st.s with
  | Sdecl (ty, name, init) ->
      let v =
        match init with None -> V.zero_of_ty ty | Some e -> eval ctx env e
      in
      bind env name v
  | Sassign (l, e) ->
      let v = eval ctx env e in
      assign ctx env l v
  | Supdate (l, op, e) ->
      let v = eval ctx env e in
      (* resolve the place once: index expressions must not be
         re-evaluated (they may have side effects) *)
      (match l with
      | Lindex (base, i) ->
          charge_mem ctx;
          let arr = V.as_array (read_lvalue ctx env base) in
          let idx = V.as_int (eval ctx env i) in
          if idx < 0 || idx >= Array.length arr then
            V.runtime_errorf "array update index %d out of bounds" idx;
          charge_mem ctx;
          arr.(idx) <- arith ctx op arr.(idx) v
      | _ ->
          let old = read_lvalue ctx env l in
          assign ctx env l (arith ctx op old v))
  | Sif (c, th, el) ->
      charge_branch ctx;
      if V.as_bool (eval ctx env c) then exec_block ctx env th
      else exec_block ctx env el
  | Sfor (init, cond, step, body) ->
      let env = push_scope env in
      exec ctx env init;
      let rec loop () =
        charge_branch ctx;
        if V.as_bool (eval ctx env cond) then begin
          (try exec_block ctx env body with Continue_loop -> ());
          exec ctx env step;
          loop ()
        end
      in
      (try loop () with Break_loop -> ())
  | Swhile (cond, body) ->
      let rec loop () =
        charge_branch ctx;
        if V.as_bool (eval ctx env cond) then begin
          (try exec_block ctx env body with Continue_loop -> ());
          loop ()
        end
      in
      (try loop () with Break_loop -> ())
  | Sforeach { fe_var; fe_coll; fe_where; fe_body } ->
      let coll = eval ctx env fe_coll in
      let run_elt v =
        charge_branch ctx;
        let env = push_scope env in
        bind env fe_var v;
        let selected =
          match fe_where with
          | None -> true
          | Some w -> V.as_bool (eval ctx env w)
        in
        if selected then
          try exec_block ctx env fe_body with Continue_loop -> ()
      in
      (try
         match coll with
         | V.Vrange (lo, hi) ->
             for i = lo to hi - 1 do
               run_elt (V.Vint i)
             done
         | V.Vlist l -> V.Vec.iter run_elt l
         | V.Varray a -> Array.iter run_elt a
         | v -> V.runtime_errorf "foreach over %s" (V.type_name v)
       with Break_loop -> ())
  | Sexpr e -> ignore (eval ctx env e)
  | Sreturn None -> raise (Return_value V.Vunit)
  | Sreturn (Some e) -> raise (Return_value (eval ctx env e))
  | Sbreak -> raise Break_loop
  | Scontinue -> raise Continue_loop
  | Sblock body -> exec_block ctx env body

and exec_block ctx env body =
  let env = push_scope env in
  List.iter (exec ctx env) body

and read_lvalue ctx env = function
  | Lvar v -> lookup env v
  | Lfield (l, f) -> (
      charge_mem ctx;
      match read_lvalue ctx env l with
      | V.Vobject obj -> V.field obj f
      | v -> V.runtime_errorf "field .%s of non-object %s" f (V.type_name v))
  | Lindex (l, i) ->
      charge_mem ctx;
      let arr = V.as_array (read_lvalue ctx env l) in
      let idx = V.as_int (eval ctx env i) in
      arr.(idx)

and assign ctx env l v =
  match l with
  | Lvar name ->
      charge_mem ctx;
      lookup_ref env name := v
  | Lfield (l, f) -> (
      charge_mem ctx;
      match read_lvalue ctx env l with
      | V.Vobject obj -> V.set_field obj f v
      | w -> V.runtime_errorf "field write .%s on %s" f (V.type_name w))
  | Lindex (l, i) ->
      charge_mem ctx;
      let arr = V.as_array (read_lvalue ctx env l) in
      let idx = V.as_int (eval ctx env i) in
      if idx < 0 || idx >= Array.length arr then
        V.runtime_errorf "array store index %d out of bounds" idx;
      arr.(idx) <- v

(* Execute a bare statement list in a given environment (filters use this
   entry point with an environment unpacked from a stream buffer). *)
let exec_stmts ctx env stmts = List.iter (exec ctx env) stmts

(* --- reference whole-program execution --- *)

(* Build the global environment: evaluate the top-level declarations in
   order.  Returns the environment; reduction globals accumulate across
   packets. *)
let init_globals ctx : env =
  let env = new_env () in
  List.iter
    (fun g ->
      let v =
        match g.gd_init with
        | None -> V.zero_of_ty g.gd_ty
        | Some e -> eval ctx env e
      in
      bind env g.gd_name v)
    ctx.prog.globals;
  env

(* Run the whole pipelined loop sequentially: the reference semantics
   against which every decomposed execution is checked. *)
let run_reference ctx : env =
  let genv = init_globals ctx in
  let n = V.as_int (eval ctx genv ctx.prog.pipeline.pd_count) in
  for p = 0 to n - 1 do
    let env = push_scope genv in
    bind env ctx.prog.pipeline.pd_var (V.Vint p);
    exec_block ctx env ctx.prog.pipeline.pd_body
  done;
  genv

let global_value genv name = lookup genv name
