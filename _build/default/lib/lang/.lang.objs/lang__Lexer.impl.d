lib/lang/lexer.ml: Buffer List Srcloc String Token
