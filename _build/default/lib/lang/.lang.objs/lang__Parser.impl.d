lib/lang/parser.ml: Array Ast Lexer List Srcloc Token
