lib/lang/value.ml: Array Ast Fmt Hashtbl List String
