lib/lang/interp.ml: Array Ast Float Hashtbl List Opcount String Value
