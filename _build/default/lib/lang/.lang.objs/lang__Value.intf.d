lib/lang/value.mli: Ast Format Hashtbl
