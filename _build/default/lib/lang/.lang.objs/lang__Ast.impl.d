lib/lang/ast.ml: List Srcloc String
