lib/lang/srcloc.ml: Fmt
