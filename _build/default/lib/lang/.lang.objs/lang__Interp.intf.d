lib/lang/interp.mli: Ast Hashtbl Opcount Value
