lib/lang/lexer.mli: Srcloc Token
