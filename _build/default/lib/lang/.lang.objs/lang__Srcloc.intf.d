lib/lang/srcloc.mli: Format
