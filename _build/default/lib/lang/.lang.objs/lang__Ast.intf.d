lib/lang/ast.mli: Srcloc
