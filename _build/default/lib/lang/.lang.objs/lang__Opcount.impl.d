lib/lang/opcount.ml: Fmt
