lib/lang/typecheck.ml: Ast Hashtbl List Srcloc
