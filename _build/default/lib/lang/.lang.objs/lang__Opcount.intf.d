lib/lang/opcount.mli: Format
