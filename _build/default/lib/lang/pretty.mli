(** Pretty-printer for PipeLang ASTs.

    Output re-parses to a structurally equal AST (the round-trip is
    property-tested), so the printer can be used to persist or inspect
    transformed programs (e.g. after loop fission). *)

val pp_ty : Format.formatter -> Ast.ty -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_lvalue : Format.formatter -> Ast.lvalue -> unit
val pp_stmt : int -> Format.formatter -> Ast.stmt -> unit
val pp_stmts : int -> Format.formatter -> Ast.stmt list -> unit
val pp_func : int -> Format.formatter -> Ast.func_decl -> unit
val pp_class : Format.formatter -> Ast.class_decl -> unit
val pp_global : Format.formatter -> Ast.global_decl -> unit
val pp_pipeline : Format.formatter -> Ast.pipeline_decl -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val program_to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val lvalue_to_string : Ast.lvalue -> string
