(* Hand-written lexer for PipeLang.  Produces a list of located tokens.
   Supports line comments [//], block comments, decimal integers and
   floats, string literals with the usual escapes. *)

type located = { tok : Token.t; loc : Srcloc.t }

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
}

let make ~file src = { src; file; pos = 0; line = 1; bol = 0 }

let cur_loc st =
  Srcloc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
      let start = cur_loc st in
      advance st;
      advance st;
      let rec to_close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> Srcloc.errorf start "unterminated block comment"
        | Some _, _ ->
            advance st;
            to_close ()
      in
      to_close ();
      skip_ws_and_comments st
  | _ -> ()

let lex_number st =
  let loc = cur_loc st in
  let start = st.pos in
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
        advance st;
        digits ()
    | _ -> ()
  in
  digits ();
  let is_float = ref false in
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      is_float := true;
      advance st;
      digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with
      | Some ('+' | '-') -> advance st
      | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> { tok = Token.FLOAT f; loc }
    | None -> Srcloc.errorf loc "malformed float literal: %s" text
  else
    match int_of_string_opt text with
    | Some n -> { tok = Token.INT n; loc }
    | None -> Srcloc.errorf loc "integer literal out of range: %s" text

let lex_ident st =
  let loc = cur_loc st in
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_alnum c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  match List.assoc_opt text Token.keywords with
  | Some kw -> { tok = kw; loc }
  | None -> { tok = Token.IDENT text; loc }

let lex_string st =
  let loc = cur_loc st in
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> Srcloc.errorf loc "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance st;
            go ()
        | Some '\\' ->
            Buffer.add_char buf '\\';
            advance st;
            go ()
        | Some '"' ->
            Buffer.add_char buf '"';
            advance st;
            go ()
        | Some c -> Srcloc.errorf (cur_loc st) "unknown escape: \\%c" c
        | None -> Srcloc.errorf loc "unterminated string literal")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  { tok = Token.STRING (Buffer.contents buf); loc }

(* Lex one token; assumes whitespace/comments already skipped and input not
   exhausted. *)
let lex_one st =
  let loc = cur_loc st in
  let two tok =
    advance st;
    advance st;
    { tok; loc }
  in
  let one tok =
    advance st;
    { tok; loc }
  in
  match peek st with
  | None -> { tok = Token.EOF; loc }
  | Some c when is_digit c -> lex_number st
  | Some c when is_alpha c -> lex_ident st
  | Some '"' -> lex_string st
  | Some '(' -> one Token.LPAREN
  | Some ')' -> one Token.RPAREN
  | Some '{' -> one Token.LBRACE
  | Some '}' -> one Token.RBRACE
  | Some '[' -> one Token.LBRACKET
  | Some ']' -> one Token.RBRACKET
  | Some ';' -> one Token.SEMI
  | Some ',' -> one Token.COMMA
  | Some '.' -> one Token.DOT
  | Some ':' -> one Token.COLON
  | Some '+' when peek2 st = Some '=' -> two Token.PLUS_ASSIGN
  | Some '-' when peek2 st = Some '=' -> two Token.MINUS_ASSIGN
  | Some '*' when peek2 st = Some '=' -> two Token.STAR_ASSIGN
  | Some '+' -> one Token.PLUS
  | Some '-' -> one Token.MINUS
  | Some '*' -> one Token.STAR
  | Some '/' -> one Token.SLASH
  | Some '%' -> one Token.PERCENT
  | Some '<' when peek2 st = Some '=' -> two Token.LE
  | Some '<' -> one Token.LT
  | Some '>' when peek2 st = Some '=' -> two Token.GE
  | Some '>' -> one Token.GT
  | Some '=' when peek2 st = Some '=' -> two Token.EQ
  | Some '=' -> one Token.ASSIGN
  | Some '!' when peek2 st = Some '=' -> two Token.NE
  | Some '!' -> one Token.NOT
  | Some '&' when peek2 st = Some '&' -> two Token.AND
  | Some '|' when peek2 st = Some '|' -> two Token.OR
  | Some c -> Srcloc.errorf loc "unexpected character %C" c

(* Tokenize a whole compilation unit.  The result always ends with [EOF]. *)
let tokenize ?(file = "<input>") src =
  let st = make ~file src in
  let rec go acc =
    skip_ws_and_comments st;
    let t = lex_one st in
    if t.tok = Token.EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
