(* Source locations for error reporting.  A [t] is a half-open character
   range within a named compilation unit, together with line/column of the
   starting position. *)

type t = {
  file : string;
  line : int;  (* 1-based *)
  col : int;   (* 0-based column of the first character *)
}

let dummy = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let pp ppf { file; line; col } = Fmt.pf ppf "%s:%d:%d" file line col

let to_string t = Fmt.str "%a" pp t

(* An exception carrying a located error message.  All front-end phases
   (lexer, parser, type checker) raise this on user errors. *)
exception Error of t * string

let errorf loc fmt = Fmt.kstr (fun s -> raise (Error (loc, s))) fmt
