(** Abstract syntax of PipeLang, the Java-like dialect of the paper.

    The dialect exposes exactly the constructs the compiler relies on:
    [Rectdomain] index collections, order-independent [foreach] loops
    (optionally with a [where] selection clause), classes implementing
    [Reducinterface] whose updates are associative and commutative, a
    [pipelined] loop over data packets, and [runtime_define] constants
    fixed by the host at run time. *)

type ty =
  | Tint
  | Tfloat
  | Tbool
  | Tvoid
  | Tstring
  | Tarray of ty
  | Tlist of ty        (** growable output collection, iterable by foreach *)
  | Trectdomain        (** 1-d rectilinear index domain [lo : hi) *)
  | Tclass of string

val ty_to_string : ty -> string
val ty_equal : ty -> ty -> bool

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type unop = Neg | Not

val binop_to_string : binop -> string

type expr = {
  e : expr_desc;
  eloc : Srcloc.t;
  mutable ety : ty option;  (** filled in by the type checker *)
}

and expr_desc =
  | Eint of int
  | Efloat of float
  | Ebool of bool
  | Estring of string
  | Enull
  | Evar of string
  | Efield of expr * string
  | Eindex of expr * expr
  | Ebinop of binop * expr * expr
  | Eunop of unop * expr
  | Ecall of string * expr list          (** global function or builtin *)
  | Emethod of expr * string * expr list
  | Enew of string * expr list           (** [new C(args)] *)
  | Enew_array of ty * expr              (** [new t[n]] *)
  | Enew_list of ty                      (** [new List<t>()] *)
  | Erange of expr * expr                (** [[lo : hi]] rectdomain literal *)
  | Eruntime_define of string

type lvalue =
  | Lvar of string
  | Lfield of lvalue * string
  | Lindex of lvalue * expr

type stmt = { s : stmt_desc; sloc : Srcloc.t }

and stmt_desc =
  | Sdecl of ty * string * expr option
  | Sassign of lvalue * expr
  | Supdate of lvalue * binop * expr
      (** [l op= e]; on a reduction variable this is an associative
          update *)
  | Sif of expr * stmt list * stmt list
  | Sfor of stmt * expr * stmt * stmt list
  | Swhile of expr * stmt list
  | Sforeach of foreach
  | Sexpr of expr
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

and foreach = {
  fe_var : string;
  fe_coll : expr;
  fe_where : expr option;
      (** selection clause: iteration is compacted to matching elements —
          the fission-friendly form of a guarding conditional *)
  fe_body : stmt list;
}

type func_decl = {
  fd_name : string;
  fd_params : (ty * string) list;
  fd_ret : ty;
  fd_body : stmt list;
  fd_loc : Srcloc.t;
}

type class_decl = {
  cd_name : string;
  cd_reduc : bool;  (** implements Reducinterface *)
  cd_fields : (ty * string) list;
  cd_methods : func_decl list;
  cd_loc : Srcloc.t;
}

(** A top-level variable, declared before the pipelined loop.  Globals of
    a class implementing [Reducinterface] are the cross-packet reduction
    variables: per-packet partial results are merged into them with
    associative/commutative [merge] calls. *)
type global_decl = {
  gd_ty : ty;
  gd_name : string;
  gd_init : expr option;
  gd_loc : Srcloc.t;
}

(** The single pipelined loop of a program: its body is the unit of
    decomposition into filters. *)
type pipeline_decl = {
  pd_var : string;   (** packet index variable *)
  pd_count : expr;   (** number of packets *)
  pd_body : stmt list;
  pd_loc : Srcloc.t;
}

type program = {
  classes : class_decl list;
  funcs : func_decl list;
  globals : global_decl list;
  pipeline : pipeline_decl;
}

val find_class : program -> string -> class_decl option
val find_func : program -> string -> func_decl option
val find_method : class_decl -> string -> func_decl option
val is_reduction_class : program -> string -> bool

(** The variable ultimately written by an lvalue. *)
val lvalue_base : lvalue -> string

val mk_expr : ?loc:Srcloc.t -> expr_desc -> expr
val mk_stmt : ?loc:Srcloc.t -> stmt_desc -> stmt
