(* Recursive-descent parser for PipeLang.

   Grammar (informal):
     program   := (class | func | pipeline)*
     class     := "class" IDENT ("implements" "Reducinterface")? "{" member* "}"
     member    := type IDENT ";" | type IDENT "(" params ")" block
     func      := type IDENT "(" params ")" block
     pipeline  := "pipelined" "(" IDENT "in" expr ")" block
     type      := base ("[" "]")*
     base      := "int" | "float" | "bool" | "void" | "String"
                | "Rectdomain" ("<" INT ">")? | "List" "<" type ">" | IDENT
   Statements and expressions are the usual Java-like forms, plus
     foreach (x in e (where e)?) block
     [lo : hi]                       -- rectdomain literal
     runtime_define IDENT            -- runtime-configured constant *)

open Ast

type state = { toks : Lexer.located array; mutable pos : int }

let make toks = { toks = Array.of_list toks; pos = 0 }
let peek st = st.toks.(st.pos).tok
let peek_loc st = st.toks.(st.pos).loc

let peek_at st n =
  let i = st.pos + n in
  if i < Array.length st.toks then st.toks.(i).tok else Token.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let error st fmt =
  Srcloc.errorf (peek_loc st) ("parse error: " ^^ fmt)

let expect st tok =
  if peek st = tok then advance st
  else
    error st "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (peek st))

let expect_ident st =
  match peek st with
  | Token.IDENT name ->
      advance st;
      name
  | t -> error st "expected identifier but found %s" (Token.to_string t)

(* --- types --- *)

let starts_type = function
  | Token.KW_INT | Token.KW_FLOAT | Token.KW_BOOL | Token.KW_VOID
  | Token.KW_STRING | Token.KW_RECTDOMAIN | Token.KW_LIST ->
      true
  | _ -> false

let rec parse_type st =
  let base =
    match peek st with
    | Token.KW_INT ->
        advance st;
        Tint
    | Token.KW_FLOAT ->
        advance st;
        Tfloat
    | Token.KW_BOOL ->
        advance st;
        Tbool
    | Token.KW_VOID ->
        advance st;
        Tvoid
    | Token.KW_STRING ->
        advance st;
        Tstring
    | Token.KW_RECTDOMAIN ->
        advance st;
        (* optional <1> dimension annotation *)
        if peek st = Token.LT then begin
          advance st;
          (match peek st with
          | Token.INT 1 -> advance st
          | Token.INT n -> error st "only Rectdomain<1> is supported, got <%d>" n
          | t -> error st "expected dimension, found %s" (Token.to_string t));
          expect st Token.GT
        end;
        Trectdomain
    | Token.KW_LIST ->
        advance st;
        expect st Token.LT;
        let elt = parse_type st in
        expect st Token.GT;
        Tlist elt
    | Token.IDENT name ->
        advance st;
        Tclass name
    | t -> error st "expected a type, found %s" (Token.to_string t)
  in
  let rec arrays t =
    if peek st = Token.LBRACKET && peek_at st 1 = Token.RBRACKET then begin
      advance st;
      advance st;
      arrays (Tarray t)
    end
    else t
  in
  arrays base

(* --- expressions --- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = Token.OR then begin
    let loc = peek_loc st in
    advance st;
    let rhs = parse_or st in
    { e = Ebinop (Or, lhs, rhs); eloc = loc; ety = None }
  end
  else lhs

and parse_and st =
  let lhs = parse_equality st in
  if peek st = Token.AND then begin
    let loc = peek_loc st in
    advance st;
    let rhs = parse_and st in
    { e = Ebinop (And, lhs, rhs); eloc = loc; ety = None }
  end
  else lhs

and parse_equality st =
  let lhs = parse_relational st in
  match peek st with
  | Token.EQ ->
      let loc = peek_loc st in
      advance st;
      let rhs = parse_relational st in
      { e = Ebinop (Eq, lhs, rhs); eloc = loc; ety = None }
  | Token.NE ->
      let loc = peek_loc st in
      advance st;
      let rhs = parse_relational st in
      { e = Ebinop (Ne, lhs, rhs); eloc = loc; ety = None }
  | _ -> lhs

and parse_relational st =
  let lhs = parse_additive st in
  let op =
    match peek st with
    | Token.LT -> Some Lt
    | Token.LE -> Some Le
    | Token.GT -> Some Gt
    | Token.GE -> Some Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      let loc = peek_loc st in
      advance st;
      let rhs = parse_additive st in
      { e = Ebinop (op, lhs, rhs); eloc = loc; ety = None }

and parse_additive st =
  let rec go lhs =
    match peek st with
    | Token.PLUS ->
        let loc = peek_loc st in
        advance st;
        let rhs = parse_multiplicative st in
        go { e = Ebinop (Add, lhs, rhs); eloc = loc; ety = None }
    | Token.MINUS ->
        let loc = peek_loc st in
        advance st;
        let rhs = parse_multiplicative st in
        go { e = Ebinop (Sub, lhs, rhs); eloc = loc; ety = None }
    | _ -> lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go lhs =
    let op =
      match peek st with
      | Token.STAR -> Some Mul
      | Token.SLASH -> Some Div
      | Token.PERCENT -> Some Mod
      | _ -> None
    in
    match op with
    | None -> lhs
    | Some op ->
        let loc = peek_loc st in
        advance st;
        let rhs = parse_unary st in
        go { e = Ebinop (op, lhs, rhs); eloc = loc; ety = None }
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.MINUS ->
      let loc = peek_loc st in
      advance st;
      let e = parse_unary st in
      { e = Eunop (Neg, e); eloc = loc; ety = None }
  | Token.NOT ->
      let loc = peek_loc st in
      advance st;
      let e = parse_unary st in
      { e = Eunop (Not, e); eloc = loc; ety = None }
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go recv =
    match peek st with
    | Token.DOT -> (
        advance st;
        let name = expect_ident st in
        if peek st = Token.LPAREN then begin
          let args = parse_arglist st in
          go { e = Emethod (recv, name, args); eloc = recv.eloc; ety = None }
        end
        else go { e = Efield (recv, name); eloc = recv.eloc; ety = None })
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        expect st Token.RBRACKET;
        go { e = Eindex (recv, idx); eloc = recv.eloc; ety = None }
    | _ -> recv
  in
  go (parse_primary st)

and parse_arglist st =
  expect st Token.LPAREN;
  if peek st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr st in
      if peek st = Token.COMMA then begin
        advance st;
        go (e :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st =
  let loc = peek_loc st in
  match peek st with
  | Token.INT n ->
      advance st;
      { e = Eint n; eloc = loc; ety = None }
  | Token.FLOAT f ->
      advance st;
      { e = Efloat f; eloc = loc; ety = None }
  | Token.STRING s ->
      advance st;
      { e = Estring s; eloc = loc; ety = None }
  | Token.KW_TRUE ->
      advance st;
      { e = Ebool true; eloc = loc; ety = None }
  | Token.KW_FALSE ->
      advance st;
      { e = Ebool false; eloc = loc; ety = None }
  | Token.KW_NULL ->
      advance st;
      { e = Enull; eloc = loc; ety = None }
  | Token.KW_RUNTIME_DEFINE ->
      advance st;
      let name = expect_ident st in
      { e = Eruntime_define name; eloc = loc; ety = None }
  | Token.KW_NEW -> (
      advance st;
      match peek st with
      | Token.KW_LIST ->
          advance st;
          expect st Token.LT;
          let elt = parse_type st in
          expect st Token.GT;
          expect st Token.LPAREN;
          expect st Token.RPAREN;
          { e = Enew_list elt; eloc = loc; ety = None }
      | Token.IDENT cname when peek_at st 1 = Token.LPAREN ->
          advance st;
          let args = parse_arglist st in
          { e = Enew (cname, args); eloc = loc; ety = None }
      | _ ->
          (* new t[n] — array allocation of a base type or class *)
          let base =
            match peek st with
            | Token.KW_INT ->
                advance st;
                Tint
            | Token.KW_FLOAT ->
                advance st;
                Tfloat
            | Token.KW_BOOL ->
                advance st;
                Tbool
            | Token.IDENT c ->
                advance st;
                Tclass c
            | t -> error st "expected type after new, found %s" (Token.to_string t)
          in
          expect st Token.LBRACKET;
          let n = parse_expr st in
          expect st Token.RBRACKET;
          { e = Enew_array (base, n); eloc = loc; ety = None })
  | Token.IDENT name ->
      advance st;
      if peek st = Token.LPAREN then
        let args = parse_arglist st in
        { e = Ecall (name, args); eloc = loc; ety = None }
      else { e = Evar name; eloc = loc; ety = None }
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.LBRACKET ->
      (* rectdomain literal [lo : hi] *)
      advance st;
      let lo = parse_expr st in
      expect st Token.COLON;
      let hi = parse_expr st in
      expect st Token.RBRACKET;
      { e = Erange (lo, hi); eloc = loc; ety = None }
  | t -> error st "expected expression, found %s" (Token.to_string t)

(* --- statements --- *)

let rec expr_to_lvalue st (e : expr) =
  match e.e with
  | Evar v -> Lvar v
  | Efield (o, f) -> Lfield (expr_to_lvalue st o, f)
  | Eindex (a, i) -> Lindex (expr_to_lvalue st a, i)
  | _ -> Srcloc.errorf e.eloc "not a valid assignment target"

(* A declaration starts with a type keyword, or with [IDENT IDENT] /
   [IDENT '[' ']'] (a class-typed variable). *)
let looks_like_decl st =
  match peek st with
  | t when starts_type t -> true
  | Token.IDENT _ -> (
      match (peek_at st 1, peek_at st 2) with
      | Token.IDENT _, _ -> true
      | Token.LBRACKET, Token.RBRACKET -> true
      | _ -> false)
  | _ -> false

let rec parse_stmt st =
  let loc = peek_loc st in
  match peek st with
  | Token.LBRACE ->
      let body = parse_block st in
      { s = Sblock body; sloc = loc }
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let th = parse_block_or_stmt st in
      let el =
        if peek st = Token.KW_ELSE then begin
          advance st;
          parse_block_or_stmt st
        end
        else []
      in
      { s = Sif (cond, th, el); sloc = loc }
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let body = parse_block_or_stmt st in
      { s = Swhile (cond, body); sloc = loc }
  | Token.KW_FOR ->
      advance st;
      expect st Token.LPAREN;
      let init = parse_simple_stmt st in
      expect st Token.SEMI;
      let cond = parse_expr st in
      expect st Token.SEMI;
      let step = parse_simple_stmt st in
      expect st Token.RPAREN;
      let body = parse_block_or_stmt st in
      { s = Sfor (init, cond, step, body); sloc = loc }
  | Token.KW_FOREACH ->
      advance st;
      expect st Token.LPAREN;
      let var = expect_ident st in
      expect st Token.KW_IN;
      let coll = parse_expr st in
      let where =
        if peek st = Token.KW_WHERE then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      expect st Token.RPAREN;
      let body = parse_block_or_stmt st in
      {
        s = Sforeach { fe_var = var; fe_coll = coll; fe_where = where; fe_body = body };
        sloc = loc;
      }
  | Token.KW_RETURN ->
      advance st;
      if peek st = Token.SEMI then begin
        advance st;
        { s = Sreturn None; sloc = loc }
      end
      else begin
        let e = parse_expr st in
        expect st Token.SEMI;
        { s = Sreturn (Some e); sloc = loc }
      end
  | Token.KW_BREAK ->
      advance st;
      expect st Token.SEMI;
      { s = Sbreak; sloc = loc }
  | Token.KW_CONTINUE ->
      advance st;
      expect st Token.SEMI;
      { s = Scontinue; sloc = loc }
  | _ ->
      let s = parse_simple_stmt st in
      expect st Token.SEMI;
      s

(* A simple statement: declaration, assignment, compound update or
   expression — the forms allowed in for-headers. *)
and parse_simple_stmt st =
  let loc = peek_loc st in
  if looks_like_decl st then begin
    let ty = parse_type st in
    let name = expect_ident st in
    let init =
      if peek st = Token.ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    { s = Sdecl (ty, name, init); sloc = loc }
  end
  else begin
    let e = parse_expr st in
    match peek st with
    | Token.ASSIGN ->
        advance st;
        let rhs = parse_expr st in
        { s = Sassign (expr_to_lvalue st e, rhs); sloc = loc }
    | Token.PLUS_ASSIGN ->
        advance st;
        let rhs = parse_expr st in
        { s = Supdate (expr_to_lvalue st e, Add, rhs); sloc = loc }
    | Token.MINUS_ASSIGN ->
        advance st;
        let rhs = parse_expr st in
        { s = Supdate (expr_to_lvalue st e, Sub, rhs); sloc = loc }
    | Token.STAR_ASSIGN ->
        advance st;
        let rhs = parse_expr st in
        { s = Supdate (expr_to_lvalue st e, Mul, rhs); sloc = loc }
    | _ -> { s = Sexpr e; sloc = loc }
  end

and parse_block st =
  expect st Token.LBRACE;
  let rec go acc =
    if peek st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

and parse_block_or_stmt st =
  if peek st = Token.LBRACE then parse_block st else [ parse_stmt st ]

(* --- declarations --- *)

let parse_params st =
  expect st Token.LPAREN;
  if peek st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let ty = parse_type st in
      let name = expect_ident st in
      if peek st = Token.COMMA then begin
        advance st;
        go ((ty, name) :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev ((ty, name) :: acc)
      end
    in
    go []
  end

let parse_class st =
  let loc = peek_loc st in
  expect st Token.KW_CLASS;
  let name = expect_ident st in
  let reduc =
    if peek st = Token.KW_IMPLEMENTS then begin
      advance st;
      expect st Token.KW_REDUCINTERFACE;
      true
    end
    else false
  in
  expect st Token.LBRACE;
  let fields = ref [] in
  let methods = ref [] in
  let rec members () =
    if peek st = Token.RBRACE then advance st
    else begin
      let mloc = peek_loc st in
      let ty = parse_type st in
      let mname = expect_ident st in
      if peek st = Token.LPAREN then begin
        let params = parse_params st in
        let body = parse_block st in
        methods :=
          { fd_name = mname; fd_params = params; fd_ret = ty; fd_body = body; fd_loc = mloc }
          :: !methods
      end
      else begin
        expect st Token.SEMI;
        fields := (ty, mname) :: !fields
      end;
      members ()
    end
  in
  members ();
  {
    cd_name = name;
    cd_reduc = reduc;
    cd_fields = List.rev !fields;
    cd_methods = List.rev !methods;
    cd_loc = loc;
  }

let parse_pipeline st =
  let loc = peek_loc st in
  expect st Token.KW_PIPELINED;
  expect st Token.LPAREN;
  let var = expect_ident st in
  expect st Token.KW_IN;
  let count =
    match (parse_expr st).e with
    | Erange (_, hi) -> hi
    | _ as e -> { e; eloc = loc; ety = None }
  in
  expect st Token.RPAREN;
  let body = parse_block st in
  { pd_var = var; pd_count = count; pd_body = body; pd_loc = loc }

let parse_program st =
  let classes = ref [] in
  let funcs = ref [] in
  let globals = ref [] in
  let pipeline = ref None in
  let rec go () =
    match peek st with
    | Token.EOF -> ()
    | Token.KW_CLASS ->
        classes := parse_class st :: !classes;
        go ()
    | Token.KW_PIPELINED ->
        (match !pipeline with
        | Some _ -> error st "a program may contain only one pipelined loop"
        | None -> pipeline := Some (parse_pipeline st));
        go ()
    | _ ->
        let loc = peek_loc st in
        let ty = parse_type st in
        let name = expect_ident st in
        if peek st = Token.LPAREN then begin
          let params = parse_params st in
          let body = parse_block st in
          funcs :=
            { fd_name = name; fd_params = params; fd_ret = ty; fd_body = body; fd_loc = loc }
            :: !funcs
        end
        else begin
          (* top-level global: [ty name (= init)? ;] *)
          let init =
            if peek st = Token.ASSIGN then begin
              advance st;
              Some (parse_expr st)
            end
            else None
          in
          expect st Token.SEMI;
          globals :=
            { gd_ty = ty; gd_name = name; gd_init = init; gd_loc = loc }
            :: !globals
        end;
        go ()
  in
  go ();
  match !pipeline with
  | None -> error st "program has no pipelined loop"
  | Some pipeline ->
      {
        classes = List.rev !classes;
        funcs = List.rev !funcs;
        globals = List.rev !globals;
        pipeline;
      }

(* Parse a full compilation unit from source text. *)
let parse ?(file = "<input>") src =
  let toks = Lexer.tokenize ~file src in
  parse_program (make toks)

(* Parse a single expression (used by tests). *)
let parse_expr_string ?(file = "<expr>") src =
  let toks = Lexer.tokenize ~file src in
  let st = make toks in
  let e = parse_expr st in
  expect st Token.EOF;
  e

(* Parse a statement list (used by tests). *)
let parse_stmts_string ?(file = "<stmts>") src =
  let toks = Lexer.tokenize ~file src in
  let st = make toks in
  let rec go acc =
    if peek st = Token.EOF then List.rev acc else go (parse_stmt st :: acc)
  in
  go []
