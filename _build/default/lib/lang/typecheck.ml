(* Type checker for PipeLang.

   Checks the whole program and annotates every expression with its type
   (the mutable [ety] field).  Host-provided data sources (e.g. the
   functions reading packets from a repository) are declared to the checker
   as extern signatures.

   Reduction classes (implementing [Reducinterface]) must provide a
   [merge] method taking one argument of the same class: the runtime uses
   it to combine per-packet and per-copy partial results, relying on the
   associativity/commutativity contract of the paper. *)

open Ast

type extern_sig = { ex_name : string; ex_params : ty list; ex_ret : ty }

type env = {
  prog : program;
  externs : extern_sig list;
  mutable scopes : (string * ty) list list;
  current_ret : ty;
}

let builtin_externs =
  [
    { ex_name = "sqrt"; ex_params = [ Tfloat ]; ex_ret = Tfloat };
    { ex_name = "fabs"; ex_params = [ Tfloat ]; ex_ret = Tfloat };
    { ex_name = "sin"; ex_params = [ Tfloat ]; ex_ret = Tfloat };
    { ex_name = "cos"; ex_params = [ Tfloat ]; ex_ret = Tfloat };
    { ex_name = "floor"; ex_params = [ Tfloat ]; ex_ret = Tfloat };
    { ex_name = "ceil"; ex_params = [ Tfloat ]; ex_ret = Tfloat };
    { ex_name = "fmin"; ex_params = [ Tfloat; Tfloat ]; ex_ret = Tfloat };
    { ex_name = "fmax"; ex_params = [ Tfloat; Tfloat ]; ex_ret = Tfloat };
    { ex_name = "imin"; ex_params = [ Tint; Tint ]; ex_ret = Tint };
    { ex_name = "imax"; ex_params = [ Tint; Tint ]; ex_ret = Tint };
    { ex_name = "iabs"; ex_params = [ Tint ]; ex_ret = Tint };
    { ex_name = "int_of_float"; ex_params = [ Tfloat ]; ex_ret = Tint };
    { ex_name = "float_of_int"; ex_params = [ Tint ]; ex_ret = Tfloat };
    { ex_name = "print"; ex_params = [ Tstring ]; ex_ret = Tvoid };
  ]

let push_scope env = env.scopes <- [] :: env.scopes
let pop_scope env =
  match env.scopes with [] -> assert false | _ :: rest -> env.scopes <- rest

let bind env loc name ty =
  match env.scopes with
  | [] -> assert false
  | scope :: rest ->
      if List.mem_assoc name scope then
        Srcloc.errorf loc "variable %s already defined in this scope" name;
      env.scopes <- ((name, ty) :: scope) :: rest

let lookup env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with
        | Some ty -> Some ty
        | None -> go rest)
  in
  go env.scopes

(* int is implicitly promotable to float, as in Java's widening. *)
let assignable ~target ~src =
  ty_equal target src || (ty_equal target Tfloat && ty_equal src Tint)

let is_numeric = function Tint | Tfloat -> true | _ -> false

let class_field env loc cname fname =
  match find_class env.prog cname with
  | None -> Srcloc.errorf loc "unknown class %s" cname
  | Some cls -> (
      match List.find_opt (fun (_, n) -> n = fname) cls.cd_fields with
      | Some (ty, _) -> ty
      | None -> Srcloc.errorf loc "class %s has no field %s" cname fname)

let rec check_expr env (e : expr) : ty =
  let ty = check_expr_desc env e in
  e.ety <- Some ty;
  ty

and check_expr_desc env (e : expr) : ty =
  let loc = e.eloc in
  match e.e with
  | Eint _ -> Tint
  | Efloat _ -> Tfloat
  | Ebool _ -> Tbool
  | Estring _ -> Tstring
  | Enull -> Tvoid
  | Eruntime_define _ -> Tint
  | Evar v -> (
      match lookup env v with
      | Some ty -> ty
      | None -> Srcloc.errorf loc "unbound variable %s" v)
  | Efield (o, f) -> (
      match check_expr env o with
      | Tclass c -> class_field env loc c f
      | Tarray _ when f = "length" -> Tint
      | t ->
          Srcloc.errorf loc "field access .%s on non-class type %s" f
            (ty_to_string t))
  | Eindex (a, i) -> (
      let it = check_expr env i in
      if not (ty_equal it Tint) then
        Srcloc.errorf loc "array index must be int, got %s" (ty_to_string it);
      match check_expr env a with
      | Tarray t -> t
      | t -> Srcloc.errorf loc "indexing non-array type %s" (ty_to_string t))
  | Ebinop (op, a, b) -> (
      let ta = check_expr env a in
      let tb = check_expr env b in
      match op with
      | Add | Sub | Mul | Div ->
          if not (is_numeric ta && is_numeric tb) then
            Srcloc.errorf loc "arithmetic on non-numeric types %s, %s"
              (ty_to_string ta) (ty_to_string tb);
          if ty_equal ta Tfloat || ty_equal tb Tfloat then Tfloat else Tint
      | Mod ->
          if not (ty_equal ta Tint && ty_equal tb Tint) then
            Srcloc.errorf loc "%% requires int operands";
          Tint
      | Lt | Le | Gt | Ge ->
          if not (is_numeric ta && is_numeric tb) then
            Srcloc.errorf loc "comparison on non-numeric types %s, %s"
              (ty_to_string ta) (ty_to_string tb);
          Tbool
      | Eq | Ne ->
          if not (ty_equal ta tb || (is_numeric ta && is_numeric tb)) then
            Srcloc.errorf loc "equality between incompatible types %s, %s"
              (ty_to_string ta) (ty_to_string tb);
          Tbool
      | And | Or ->
          if not (ty_equal ta Tbool && ty_equal tb Tbool) then
            Srcloc.errorf loc "boolean operator on non-bool operands";
          Tbool)
  | Eunop (Neg, a) ->
      let t = check_expr env a in
      if not (is_numeric t) then Srcloc.errorf loc "negation of non-numeric";
      t
  | Eunop (Not, a) ->
      let t = check_expr env a in
      if not (ty_equal t Tbool) then Srcloc.errorf loc "! on non-bool";
      Tbool
  | Ecall (f, args) -> (
      let arg_tys = List.map (check_expr env) args in
      match find_func env.prog f with
      | Some fd ->
          check_call loc f (List.map fst fd.fd_params) arg_tys;
          fd.fd_ret
      | None -> (
          match List.find_opt (fun ex -> ex.ex_name = f) env.externs with
          | Some ex ->
              check_call loc f ex.ex_params arg_tys;
              ex.ex_ret
          | None -> Srcloc.errorf loc "unknown function %s" f))
  | Emethod (o, m, args) -> (
      let ot = check_expr env o in
      let arg_tys = List.map (check_expr env) args in
      match ot with
      | Tlist elt -> (
          match (m, arg_tys) with
          | "add", [ t ] ->
              if not (assignable ~target:elt ~src:t) then
                Srcloc.errorf loc "List<%s>.add with %s" (ty_to_string elt)
                  (ty_to_string t);
              Tvoid
          | "size", [] -> Tint
          | "get", [ Tint ] -> elt
          | "clear", [] -> Tvoid
          | _, _ -> Srcloc.errorf loc "unknown List method %s/%d" m (List.length args))
      | Tclass c -> (
          match find_class env.prog c with
          | None -> Srcloc.errorf loc "unknown class %s" c
          | Some cls -> (
              match find_method cls m with
              | None -> Srcloc.errorf loc "class %s has no method %s" c m
              | Some md ->
                  check_call loc m (List.map fst md.fd_params) arg_tys;
                  md.fd_ret))
      | t -> Srcloc.errorf loc "method call on non-object type %s" (ty_to_string t))
  | Enew (c, args) -> (
      match find_class env.prog c with
      | None -> Srcloc.errorf loc "unknown class %s" c
      | Some cls ->
          let arg_tys = List.map (check_expr env) args in
          (* constructor: either no args (zero-init) or one arg per field *)
          if arg_tys = [] then Tclass c
          else begin
            let field_tys = List.map fst cls.cd_fields in
            check_call loc ("new " ^ c) field_tys arg_tys;
            Tclass c
          end)
  | Enew_array (t, n) ->
      let nt = check_expr env n in
      if not (ty_equal nt Tint) then
        Srcloc.errorf loc "array size must be int";
      Tarray t
  | Enew_list t -> Tlist t
  | Erange (lo, hi) ->
      let lt = check_expr env lo and ht = check_expr env hi in
      if not (ty_equal lt Tint && ty_equal ht Tint) then
        Srcloc.errorf loc "rectdomain bounds must be int";
      Trectdomain

and check_call loc name params args =
  if List.length params <> List.length args then
    Srcloc.errorf loc "%s expects %d argument(s), got %d" name
      (List.length params) (List.length args);
  List.iter2
    (fun p a ->
      if not (assignable ~target:p ~src:a) then
        Srcloc.errorf loc "%s: argument type %s incompatible with %s" name
          (ty_to_string a) (ty_to_string p))
    params args

let rec check_lvalue env loc (l : lvalue) : ty =
  match l with
  | Lvar v -> (
      match lookup env v with
      | Some ty -> ty
      | None -> Srcloc.errorf loc "unbound variable %s" v)
  | Lfield (o, f) -> (
      match check_lvalue env loc o with
      | Tclass c -> class_field env loc c f
      | t -> Srcloc.errorf loc "field write .%s on non-class %s" f (ty_to_string t))
  | Lindex (a, i) -> (
      let it = check_expr env i in
      if not (ty_equal it Tint) then Srcloc.errorf loc "array index must be int";
      match check_lvalue env loc a with
      | Tarray t -> t
      | t -> Srcloc.errorf loc "indexing non-array %s" (ty_to_string t))

let element_type _env loc coll_ty =
  match coll_ty with
  | Trectdomain -> Tint
  | Tlist t -> t
  | Tarray t -> t
  | t -> Srcloc.errorf loc "foreach over non-collection type %s" (ty_to_string t)

let rec check_stmt env (st : stmt) =
  let loc = st.sloc in
  match st.s with
  | Sdecl (ty, name, init) ->
      (match init with
      | None -> ()
      | Some e ->
          let et = check_expr env e in
          if not (assignable ~target:ty ~src:et) then
            Srcloc.errorf loc "cannot initialize %s %s with %s"
              (ty_to_string ty) name (ty_to_string et));
      bind env loc name ty
  | Sassign (l, e) ->
      let lt = check_lvalue env loc l in
      let et = check_expr env e in
      if not (assignable ~target:lt ~src:et) then
        Srcloc.errorf loc "cannot assign %s to %s" (ty_to_string et)
          (ty_to_string lt)
  | Supdate (l, op, e) -> (
      let lt = check_lvalue env loc l in
      let et = check_expr env e in
      match op with
      | Add | Sub | Mul ->
          if not (is_numeric lt && is_numeric et) then
            Srcloc.errorf loc "compound update on non-numeric types"
      | _ -> Srcloc.errorf loc "unsupported compound operator")
  | Sif (c, th, el) ->
      let ct = check_expr env c in
      if not (ty_equal ct Tbool) then Srcloc.errorf loc "if condition not bool";
      check_block env th;
      check_block env el
  | Sfor (init, cond, step, body) ->
      push_scope env;
      check_stmt env init;
      let ct = check_expr env cond in
      if not (ty_equal ct Tbool) then Srcloc.errorf loc "for condition not bool";
      check_stmt env step;
      check_block env body;
      pop_scope env
  | Swhile (c, body) ->
      let ct = check_expr env c in
      if not (ty_equal ct Tbool) then
        Srcloc.errorf loc "while condition not bool";
      check_block env body
  | Sforeach { fe_var; fe_coll; fe_where; fe_body } ->
      let ct = check_expr env fe_coll in
      let elt = element_type env loc ct in
      push_scope env;
      bind env loc fe_var elt;
      (match fe_where with
      | None -> ()
      | Some w ->
          let wt = check_expr env w in
          if not (ty_equal wt Tbool) then
            Srcloc.errorf loc "where clause not bool");
      check_block env fe_body;
      pop_scope env
  | Sexpr e -> ignore (check_expr env e)
  | Sreturn None ->
      if not (ty_equal env.current_ret Tvoid) then
        Srcloc.errorf loc "return without value in non-void function"
  | Sreturn (Some e) ->
      let et = check_expr env e in
      if not (assignable ~target:env.current_ret ~src:et) then
        Srcloc.errorf loc "return type %s incompatible with %s"
          (ty_to_string et)
          (ty_to_string env.current_ret)
  | Sbreak | Scontinue -> ()
  | Sblock body -> check_block env body

and check_block env body =
  push_scope env;
  List.iter (check_stmt env) body;
  pop_scope env

let check_func env (fd : func_decl) ~self =
  let env = { env with scopes = [ [] ]; current_ret = fd.fd_ret } in
  (match self with
  | None -> ()
  | Some cname -> bind env fd.fd_loc "this" (Tclass cname));
  List.iter (fun (ty, name) -> bind env fd.fd_loc name ty) fd.fd_params;
  check_block env fd.fd_body

let check_class env (cd : class_decl) =
  (* field types must refer to known classes *)
  List.iter
    (fun (ty, name) ->
      match ty with
      | Tclass c when find_class env.prog c = None ->
          Srcloc.errorf cd.cd_loc "field %s.%s has unknown class type %s"
            cd.cd_name name c
      | _ -> ())
    cd.cd_fields;
  List.iter (fun m -> check_func env m ~self:(Some cd.cd_name)) cd.cd_methods;
  if cd.cd_reduc then begin
    match find_method cd "merge" with
    | Some { fd_params = [ (Tclass c, _) ]; fd_ret = Tvoid; _ }
      when c = cd.cd_name ->
        ()
    | _ ->
        Srcloc.errorf cd.cd_loc
          "reduction class %s must define 'void merge(%s other)'" cd.cd_name
          cd.cd_name
  end

(* Check an entire program.  [externs] declares the host-provided data
   source and sink functions on top of the standard math builtins. *)
let check ?(externs = []) (prog : program) =
  let env =
    {
      prog;
      externs = externs @ builtin_externs;
      scopes = [ [] ];
      current_ret = Tvoid;
    }
  in
  (* duplicate class/function names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.cd_name then
        Srcloc.errorf c.cd_loc "duplicate class %s" c.cd_name;
      Hashtbl.add seen c.cd_name ())
    prog.classes;
  let seen_f = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen_f f.fd_name then
        Srcloc.errorf f.fd_loc "duplicate function %s" f.fd_name;
      Hashtbl.add seen_f f.fd_name ())
    prog.funcs;
  List.iter (check_class env) prog.classes;
  List.iter (fun f -> check_func env f ~self:None) prog.funcs;
  (* globals: checked in order, visible to the pipelined body *)
  let env = { env with scopes = [ [] ] } in
  List.iter
    (fun g ->
      (match g.gd_init with
      | None -> ()
      | Some e ->
          let et = check_expr env e in
          if not (assignable ~target:g.gd_ty ~src:et) then
            Srcloc.errorf g.gd_loc "cannot initialize global %s %s with %s"
              (ty_to_string g.gd_ty) g.gd_name (ty_to_string et));
      bind env g.gd_loc g.gd_name g.gd_ty)
    prog.globals;
  (* pipelined body: packet variable in scope *)
  push_scope env;
  bind env prog.pipeline.pd_loc prog.pipeline.pd_var Tint;
  let ct = check_expr env prog.pipeline.pd_count in
  if not (ty_equal ct Tint) then
    Srcloc.errorf prog.pipeline.pd_loc "packet count must be int";
  check_block env prog.pipeline.pd_body
