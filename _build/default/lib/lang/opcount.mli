(** Operation counters.

    The paper's cost model (§4.3) estimates computation time from the
    number of floating point and integer operations.  The interpreter
    charges every executed operation to a counter; the compiler profiles
    each candidate filter on sample packets to obtain per-segment
    operation counts, which the cost model divides by a computing unit's
    power. *)

type t = {
  mutable int_ops : int;
  mutable float_ops : int;
  mutable mem_ops : int;     (** field/array loads and stores *)
  mutable branch_ops : int;  (** conditionals, loop iterations *)
  mutable calls : int;
  mutable appends : int;     (** list appends (output-element creation) *)
  mutable allocs : int;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

(** [add ~into c] accumulates [c] into [into]. *)
val add : into:t -> t -> unit

(** Component-wise difference, for measuring a code region. *)
val diff : after:t -> before:t -> t

(** Weights turning a counter into a single weighted-operation figure.
    These are knobs of the cost model, not of the analysis: the
    decomposition only depends on ratios. *)
type weights = {
  w_int : float;
  w_float : float;
  w_mem : float;
  w_branch : float;
  w_call : float;
  w_append : float;
  w_alloc : float;
}

val default_weights : weights

(** Weighted total operation count. *)
val weighted : ?weights:weights -> t -> float

(** Unweighted total. *)
val total : t -> int

val pp : Format.formatter -> t -> unit
