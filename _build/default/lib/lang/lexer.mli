(** Hand-written lexer for PipeLang. *)

(** A token together with the location of its first character. *)
type located = { tok : Token.t; loc : Srcloc.t }

(** [tokenize ?file src] lexes a whole compilation unit.  Line comments
    ([//]), block comments and whitespace are skipped; the result always
    ends with {!Token.EOF}.  Raises {!Srcloc.Error} on malformed input
    (unterminated comment or string, unknown character, out-of-range
    integer literal). *)
val tokenize : ?file:string -> string -> located list
