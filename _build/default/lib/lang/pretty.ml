(* Pretty-printer for PipeLang ASTs.  Output re-parses to an equal AST
   (round-trip property tested in the test suite). *)

open Ast

let rec pp_ty ppf t = Fmt.string ppf (ty_to_string t)

and pp_expr ppf (e : expr) =
  match e.e with
  | Eint n -> Fmt.int ppf n
  | Efloat f ->
      (* Keep a decimal point so the literal re-lexes as a float. *)
      let s = Printf.sprintf "%.17g" f in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
      then Fmt.string ppf s
      else Fmt.pf ppf "%s.0" s
  | Ebool b -> Fmt.bool ppf b
  | Estring s -> Fmt.pf ppf "%S" s
  | Enull -> Fmt.string ppf "null"
  | Evar v -> Fmt.string ppf v
  | Efield (o, f) -> Fmt.pf ppf "%a.%s" pp_atom o f
  | Eindex (a, i) -> Fmt.pf ppf "%a[%a]" pp_atom a pp_expr i
  | Ebinop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | Eunop (Neg, a) -> Fmt.pf ppf "(-%a)" pp_atom a
  | Eunop (Not, a) -> Fmt.pf ppf "(!%a)" pp_atom a
  | Ecall (f, args) -> Fmt.pf ppf "%s(%a)" f pp_args args
  | Emethod (o, m, args) -> Fmt.pf ppf "%a.%s(%a)" pp_atom o m pp_args args
  | Enew (c, args) -> Fmt.pf ppf "new %s(%a)" c pp_args args
  | Enew_array (t, n) -> Fmt.pf ppf "new %a[%a]" pp_ty t pp_expr n
  | Enew_list t -> Fmt.pf ppf "new List<%a>()" pp_ty t
  | Erange (lo, hi) -> Fmt.pf ppf "[%a : %a]" pp_expr lo pp_expr hi
  | Eruntime_define name -> Fmt.pf ppf "runtime_define %s" name

and pp_atom ppf (e : expr) =
  (* atoms needing no parens when used as a receiver *)
  match e.e with
  | Eint _ | Efloat _ | Ebool _ | Evar _ | Efield _ | Eindex _ | Ecall _
  | Emethod _ | Estring _ | Enull ->
      pp_expr ppf e
  | _ -> Fmt.pf ppf "(%a)" pp_expr e

and pp_args ppf args = Fmt.(list ~sep:(any ", ") pp_expr) ppf args

let rec pp_lvalue ppf = function
  | Lvar v -> Fmt.string ppf v
  | Lfield (l, f) -> Fmt.pf ppf "%a.%s" pp_lvalue l f
  | Lindex (l, i) -> Fmt.pf ppf "%a[%a]" pp_lvalue l pp_expr i

let rec pp_stmt ind ppf (st : stmt) =
  let pad = String.make ind ' ' in
  match st.s with
  | Sdecl (t, v, None) -> Fmt.pf ppf "%s%a %s;" pad pp_ty t v
  | Sdecl (t, v, Some e) -> Fmt.pf ppf "%s%a %s = %a;" pad pp_ty t v pp_expr e
  | Sassign (l, e) -> Fmt.pf ppf "%s%a = %a;" pad pp_lvalue l pp_expr e
  | Supdate (l, op, e) ->
      Fmt.pf ppf "%s%a %s= %a;" pad pp_lvalue l (binop_to_string op) pp_expr e
  | Sif (c, th, []) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_expr c (pp_stmts (ind + 2)) th
        pad
  | Sif (c, th, el) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_expr c
        (pp_stmts (ind + 2)) th pad (pp_stmts (ind + 2)) el pad
  | Sfor (init, cond, step, body) ->
      let str_of p x = Fmt.str "%a" (p 0) x in
      let init_s = str_of pp_stmt init in
      let init_s = String.sub init_s 0 (String.length init_s - 1) in
      let step_s = str_of pp_stmt step in
      let step_s = String.sub step_s 0 (String.length step_s - 1) in
      Fmt.pf ppf "%sfor (%s; %a; %s) {@\n%a@\n%s}" pad init_s pp_expr cond
        step_s (pp_stmts (ind + 2)) body pad
  | Swhile (c, body) ->
      Fmt.pf ppf "%swhile (%a) {@\n%a@\n%s}" pad pp_expr c (pp_stmts (ind + 2))
        body pad
  | Sforeach { fe_var; fe_coll; fe_where; fe_body } ->
      let pp_where ppf = function
        | None -> ()
        | Some w -> Fmt.pf ppf " where %a" pp_expr w
      in
      Fmt.pf ppf "%sforeach (%s in %a%a) {@\n%a@\n%s}" pad fe_var pp_expr
        fe_coll pp_where fe_where (pp_stmts (ind + 2)) fe_body pad
  | Sexpr e -> Fmt.pf ppf "%s%a;" pad pp_expr e
  | Sreturn None -> Fmt.pf ppf "%sreturn;" pad
  | Sreturn (Some e) -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | Sbreak -> Fmt.pf ppf "%sbreak;" pad
  | Scontinue -> Fmt.pf ppf "%scontinue;" pad
  | Sblock body -> Fmt.pf ppf "%s{@\n%a@\n%s}" pad (pp_stmts (ind + 2)) body pad

and pp_stmts ind ppf stmts =
  Fmt.(list ~sep:(any "@\n") (pp_stmt ind)) ppf stmts

let pp_params ppf params =
  Fmt.(
    list ~sep:(any ", ") (fun ppf (t, v) -> Fmt.pf ppf "%a %s" pp_ty t v))
    ppf params

let pp_func ind ppf (f : func_decl) =
  let pad = String.make ind ' ' in
  Fmt.pf ppf "%s%a %s(%a) {@\n%a@\n%s}" pad pp_ty f.fd_ret f.fd_name pp_params
    f.fd_params (pp_stmts (ind + 2)) f.fd_body pad

let pp_class ppf (c : class_decl) =
  let impl = if c.cd_reduc then " implements Reducinterface" else "" in
  Fmt.pf ppf "class %s%s {@\n" c.cd_name impl;
  List.iter (fun (t, v) -> Fmt.pf ppf "  %a %s;@\n" pp_ty t v) c.cd_fields;
  List.iter (fun m -> Fmt.pf ppf "%a@\n" (pp_func 2) m) c.cd_methods;
  Fmt.pf ppf "}"

let pp_pipeline ppf (p : pipeline_decl) =
  Fmt.pf ppf "pipelined (%s in [0 : %a]) {@\n%a@\n}" p.pd_var pp_expr
    p.pd_count (pp_stmts 2) p.pd_body

let pp_global ppf (g : global_decl) =
  match g.gd_init with
  | None -> Fmt.pf ppf "%a %s;" pp_ty g.gd_ty g.gd_name
  | Some e -> Fmt.pf ppf "%a %s = %a;" pp_ty g.gd_ty g.gd_name pp_expr e

let pp_program ppf (prog : program) =
  List.iter (fun c -> Fmt.pf ppf "%a@\n@\n" pp_class c) prog.classes;
  List.iter (fun f -> Fmt.pf ppf "%a@\n@\n" (pp_func 0) f) prog.funcs;
  List.iter (fun g -> Fmt.pf ppf "%a@\n@\n" pp_global g) prog.globals;
  pp_pipeline ppf prog.pipeline

let program_to_string prog = Fmt.str "%a" pp_program prog
let expr_to_string e = Fmt.str "%a" pp_expr e
let stmt_to_string s = Fmt.str "%a" (pp_stmt 0) s
let lvalue_to_string l = Fmt.str "%a" pp_lvalue l
