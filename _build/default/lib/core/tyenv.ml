(* Types of the variables visible at filter boundaries: globals, the
   packet variable, and the top-level declarations of the (fissioned)
   pipelined body.  Packing and code generation consult this map to decide
   how each ReqComm item is serialized. *)

open Lang

type t = (string * Ast.ty) list

let of_body (prog : Ast.program) (body : Ast.stmt list) : t =
  let globals = List.map (fun g -> (g.Ast.gd_name, g.Ast.gd_ty)) prog.Ast.globals in
  let packet = (prog.Ast.pipeline.Ast.pd_var, Ast.Tint) in
  let decls =
    List.filter_map
      (fun (st : Ast.stmt) ->
        match st.Ast.s with
        | Ast.Sdecl (ty, name, _) -> Some (name, ty)
        | _ -> None)
      body
  in
  packet :: (globals @ decls)

let of_segments prog (segments : Boundary.segment list) =
  of_body prog (List.concat_map (fun s -> s.Boundary.seg_stmts) segments)

let find (t : t) name = List.assoc_opt name t

(* Type of field [f] of class [c]. *)
let field_ty prog cname f =
  match Ast.find_class prog cname with
  | None -> None
  | Some cd -> List.find_opt (fun (_, n) -> n = f) cd.Ast.cd_fields |> Option.map fst
