(* Filter code generation (§5).

   Given a decomposition (segment -> computing unit), builds DataCutter
   filters.  Each generated filter, per unit of work:
   - unpacks the values named by the boundary's ReqComm set from the
     input buffer (using the layout chosen by [Packing]),
   - executes its code segments with the instrumented interpreter,
   - packs the next boundary's ReqComm set into the output buffer.

   Reduction globals are persistent per-copy filter state; at finalize
   each copy ships its partial as an end-of-stream payload, intermediate
   filters that share the global merge it into their own partial, other
   filters forward it, and the sink (the viewing node, C_m) merges
   everything, so the authoritative result ends where the paper puts it.

   Marshalling costs are charged to the filter's operation counter: two
   memory operations per packed value, except contiguous field-wise
   columns that the filter only forwards, which cost a bulk copy — the
   §5 rationale for the field-wise layout. *)

open Lang
open Datacutter
module V = Value
module SS = Set.Make (String)

type plan = {
  prog : Ast.program;
  segments : Boundary.segment array;
  rc : Reqcomm.t;
  tyenv : Tyenv.t;
  assignment : Costmodel.assignment;
  m : int;
  (* cut.(u-1) for unit u in 1..m: index of the first segment assigned to
     a unit >= u; cut.(0) = 0 and a virtual cut.(m) = n+1 *)
  cuts : int array;
  (* layout of the stream entering unit u (u in 2..m) at cuts.(u-1) *)
  layouts : Packing.layout array; (* index u-1, entry 0 unused *)
  num_packets : int;
  externs : (string * Interp.extern_fn) list;
  runtime_defs : (string * int) list;
}

let segments_of_unit plan u =
  let out = ref [] in
  Array.iteri
    (fun i a -> if a = u then out := plan.segments.(i) :: !out)
    plan.assignment;
  List.rev !out

let make_plan ?(layout_mode : Packing.mode = `Auto) (prog : Ast.program)
    (segments : Boundary.segment list)
    (rc : Reqcomm.t) ~(assignment : Costmodel.assignment) ~(m : int)
    ~(num_packets : int) ~(externs : (string * Interp.extern_fn) list)
    ~(runtime_defs : (string * int) list) : plan =
  let segments = Array.of_list segments in
  let n1 = Array.length segments in
  if Array.length assignment <> n1 then
    invalid_arg "make_plan: assignment/segment mismatch";
  let tyenv = Tyenv.of_segments prog (Array.to_list segments) in
  let cuts =
    Array.init m (fun u0 ->
        let u = u0 + 1 in
        let rec first i =
          if i >= n1 then n1 else if assignment.(i) >= u then i else first (i + 1)
        in
        first 0)
  in
  let filter_of_seg s = assignment.(s) in
  let layouts =
    Array.init m (fun u0 ->
        if u0 = 0 then []
        else
          let cut = cuts.(u0) in
          if cut >= n1 then [] (* only final results flow here *)
          else
            Packing.layout_for_cut ~mode:layout_mode prog tyenv rc ~cut
              ~filter_of_seg)
  in
  {
    prog;
    segments;
    rc;
    tyenv;
    assignment;
    m;
    cuts;
    layouts;
    num_packets;
    externs;
    runtime_defs;
  }

(* Reduction globals held as partial state by the segments of unit [u]:
   any reduction global a segment touches (updates usually happen through
   conditionals and array-element writes, which the must-Gen analysis
   cannot claim, so the per-segment si_reduc_state is the right signal).
   A segment that only reads such a global still participates correctly:
   it merges upstream partials into its own (possibly identity) state and
   ships the combination at finalize. *)
let reduc_updated plan u =
  Array.to_list plan.rc.Reqcomm.segs
  |> List.fold_left
       (fun acc si ->
         if plan.assignment.(si.Reqcomm.si_seg.Boundary.seg_index) = u then
           Reqcomm.S.fold SS.add si.Reqcomm.si_reduc_state acc
         else acc)
       SS.empty

let global_decl plan name =
  List.find_opt (fun g -> g.Ast.gd_name = name) plan.prog.Ast.globals

let reduc_global_types plan =
  List.filter_map
    (fun g ->
      if Reqcomm.S.mem g.Ast.gd_name (Reqcomm.reduction_globals plan.prog) then
        Some (g.Ast.gd_name, g.Ast.gd_ty)
      else None)
    plan.prog.Ast.globals

(* Marshalling cost charged as memory operations on [ctx]. *)
let charge_marshal ctx layout ~lookup ~consumed_here =
  let ops = Packing.marshal_ops ctx.Interp.prog layout ~lookup ~consumed_here in
  ctx.Interp.counter.Opcount.mem_ops <- ctx.Interp.counter.Opcount.mem_ops + ops

(* Does unit [u] consume field [f] of collection [c]? *)
let consumed_by_unit plan u c f =
  let item = Varset.ElemField (c, f) in
  Array.exists
    (fun si ->
      plan.assignment.(si.Reqcomm.si_seg.Boundary.seg_index) = u
      && Varset.mem item si.Reqcomm.si_cons)
    plan.rc.Reqcomm.segs

(* Weighted operations of the counter delta. *)
let weighted_since ctx before =
  Opcount.weighted (Opcount.diff ~after:ctx.Interp.counter ~before)

(* Pack the unit's partial reduction state as an EOS payload. *)
let finalize_payload plan u ctx genv =
  let updated = reduc_updated plan u in
  if SS.is_empty updated then None
  else begin
    let globals =
      SS.elements updated
      |> List.filter_map (fun name ->
             match global_decl plan name with
             | Some g ->
                 Some (name, g.Ast.gd_ty, Interp.lookup genv name)
             | None -> None)
    in
    let data = Objpack.pack_globals plan.prog globals in
    (* packing cost proportional to payload size *)
    ctx.Interp.counter.Opcount.mem_ops <-
      ctx.Interp.counter.Opcount.mem_ops + (Bytes.length data / 8);
    Some (Filter.make_buffer ~packet:(-1) data)
  end

(* Merge an EOS payload into this copy's globals where relevant; return
   the repacked leftover to forward (None if fully absorbed). *)
let absorb_payload plan ~absorb_all u ctx genv (b : Filter.buffer) =
  let types = reduc_global_types plan in
  let incoming = Objpack.unpack_globals plan.prog types b.Filter.data in
  ctx.Interp.counter.Opcount.mem_ops <-
    ctx.Interp.counter.Opcount.mem_ops + (Bytes.length b.Filter.data / 8);
  let updated = reduc_updated plan u in
  let mine name = absorb_all || SS.mem name updated in
  let leftover =
    List.filter
      (fun (name, v) ->
        if mine name then begin
          let mine_v = Interp.lookup genv name in
          (match (mine_v, v) with
          | V.Vobject _, V.Vobject _ ->
              ignore (Interp.call_method ctx mine_v "merge" [ v ])
          | _ -> V.runtime_errorf "cannot merge non-object global %s" name);
          false
        end
        else true)
      incoming
  in
  if leftover = [] then None
  else begin
    let globals =
      List.filter_map
        (fun (name, v) ->
          match global_decl plan name with
          | Some g -> Some (name, g.Ast.gd_ty, v)
          | None -> None)
        leftover
    in
    Some (Filter.make_buffer ~packet:(-1) (Objpack.pack_globals plan.prog globals))
  end

(* Cost of passing a buffer through a unit that hosts no segments. *)
let forward_cost bytes = float_of_int bytes *. 0.25

(* ------------------------------------------------------------------ *)
(* Filter construction                                                  *)
(* ------------------------------------------------------------------ *)

(* The data-source filter for unit 1 (one per copy).  Copy [k] of [width]
   handles packets congruent to k modulo width, mirroring the declustered
   datasets of the paper's data nodes. *)
let make_source plan ~(width : int) (k : int) : Filter.source =
  let ctx =
    Interp.create_ctx ~externs:plan.externs ~runtime_defs:plan.runtime_defs
      plan.prog
  in
  let genv = Interp.init_globals ctx in
  let my_segs = segments_of_unit plan 1 in
  let out_layout = if plan.m > 1 then plan.layouts.(1) else [] in
  let next_packet = ref k in
  let next () =
    if !next_packet >= plan.num_packets then None
    else begin
      let p = !next_packet in
      next_packet := !next_packet + width;
      let before = Opcount.copy ctx.Interp.counter in
      let env = Interp.push_scope genv in
      Interp.bind env plan.prog.Ast.pipeline.Ast.pd_var (V.Vint p);
      List.iter
        (fun seg -> Interp.exec_stmts ctx env seg.Boundary.seg_stmts)
        my_segs;
      let lookup =
        Packing.runtime_aware_lookup
          ~runtime_def:(Hashtbl.find_opt ctx.Interp.runtime_defs)
          ~lookup:(Interp.lookup env)
      in
      let data = Packing.pack plan.prog out_layout ~lookup in
      charge_marshal ctx out_layout ~lookup
        ~consumed_here:(fun c f -> consumed_by_unit plan 1 c f);
      Some (Filter.make_buffer ~packet:p data, weighted_since ctx before)
    end
  in
  let src_finalize () =
    let before = Opcount.copy ctx.Interp.counter in
    let payload = finalize_payload plan 1 ctx genv in
    (payload, weighted_since ctx before)
  in
  { Filter.src_name = Printf.sprintf "source[%d]" k; next; src_finalize }

(* An inner or sink filter for unit [u] (2..m). *)
let make_filter plan ~(u : int)
    ?(on_result : ((string * V.t) list -> unit) option) (_k : int) : Filter.t =
  let ctx =
    Interp.create_ctx ~externs:plan.externs ~runtime_defs:plan.runtime_defs
      plan.prog
  in
  let genv = Interp.init_globals ctx in
  let my_segs = segments_of_unit plan u in
  let is_sink = u = plan.m in
  let in_layout = plan.layouts.(u - 1) in
  let out_layout = if u < plan.m then plan.layouts.(u) else [] in
  let consumed_here c f = consumed_by_unit plan u c f in
  let name = Printf.sprintf "unit%d" u in
  let process (b : Filter.buffer) =
    let before = Opcount.copy ctx.Interp.counter in
    if my_segs = [] then begin
      (* pass-through placement: unit hosts no computation *)
      let cost = forward_cost (Filter.buffer_size b) in
      if is_sink then (None, cost) else (Some b, cost)
    end
    else begin
      let env = Interp.push_scope genv in
      Interp.bind env plan.prog.Ast.pipeline.Ast.pd_var (V.Vint b.Filter.packet);
      let bindings = Packing.unpack plan.prog in_layout b.Filter.data in
      List.iter (fun (name, v) -> Interp.bind env name v) bindings;
      let lookup =
        Packing.runtime_aware_lookup
          ~runtime_def:(Hashtbl.find_opt ctx.Interp.runtime_defs)
          ~lookup:(Interp.lookup env)
      in
      charge_marshal ctx in_layout ~lookup ~consumed_here;
      List.iter
        (fun seg -> Interp.exec_stmts ctx env seg.Boundary.seg_stmts)
        my_segs;
      let out =
        if u < plan.m then begin
          let data = Packing.pack plan.prog out_layout ~lookup in
          charge_marshal ctx out_layout ~lookup ~consumed_here;
          Some (Filter.make_buffer ~packet:b.Filter.packet data)
        end
        else None
      in
      (out, weighted_since ctx before)
    end
  in
  let on_eos = function
    | None -> (None, 0.0)
    | Some b ->
        let before = Opcount.copy ctx.Interp.counter in
        let fwd = absorb_payload plan ~absorb_all:is_sink u ctx genv b in
        ((if is_sink then None else fwd), weighted_since ctx before)
  in
  let finalize () =
    let before = Opcount.copy ctx.Interp.counter in
    let payload = if is_sink then None else finalize_payload plan u ctx genv in
    if is_sink then begin
      match on_result with
      | Some f ->
          let reduc = Reqcomm.reduction_globals plan.prog in
          let results =
            Reqcomm.S.elements reduc
            |> List.map (fun name -> (name, Interp.lookup genv name))
          in
          f results
      | None -> ()
    end;
    (payload, weighted_since ctx before)
  in
  { Filter.name; init = (fun () -> 0.0); process; on_eos; finalize }

(* ------------------------------------------------------------------ *)
(* Topology assembly                                                    *)
(* ------------------------------------------------------------------ *)

(* Build a runnable topology for the plan.  [widths] gives the number of
   transparent copies per unit (e.g. [|2; 2; 1|] for the paper's 2-2-1
   configuration); [powers] and [links] describe the cluster.  Returns
   the topology and a handle yielding the sink's merged reduction
   globals after a run. *)
let build_topology plan ~(widths : int array) ~(powers : float array)
    ~(bandwidths : float array) ?(latency = 0.0) () :
    Topology.t * (unit -> (string * V.t) list) =
  if Array.length widths <> plan.m then
    invalid_arg "build_topology: widths/units mismatch";
  if widths.(plan.m - 1) <> 1 then
    invalid_arg "build_topology: the sink stage must have width 1";
  let results = ref [] in
  let on_result r = results := r in
  let stages =
    List.init plan.m (fun u0 ->
        let u = u0 + 1 in
        let role =
          if u = 1 then Topology.Source (fun k -> make_source plan ~width:widths.(0) k)
          else if u = plan.m then
            Topology.Sink (fun k -> make_filter plan ~u ~on_result k)
          else Topology.Inner (fun k -> make_filter plan ~u k)
        in
        {
          Topology.stage_name = Printf.sprintf "C%d" u;
          width = widths.(u0);
          power = powers.(u0);
          role;
        })
  in
  let links =
    List.init (plan.m - 1) (fun i ->
        { Topology.bandwidth = bandwidths.(i); latency })
  in
  (Topology.create ~stages ~links, fun () -> !results)
