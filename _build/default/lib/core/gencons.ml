(* One-pass Gen/Cons analysis (Figure 2 of the paper).

   For the code segment [b] between two consecutive candidate filter
   boundaries the analysis computes:
   - Gen(b):  values defined in [b] (must-information), and
   - Cons(b): values used in [b] but not defined in it (may-information).

   Statements are traversed in reverse order.  For an assignment the
   target joins Gen and leaves Cons, and the used values join Cons.  A
   conditional contributes its Cons but never its Gen.  A loop body is
   analyzed separately; accesses indexed by a function of the loop index
   are widened to rectilinear sections derived from the loop bounds, and
   (under the paper's ">= 1 iteration" assumption) the body's Gen joins
   the segment's Gen.  The analysis is applied interprocedurally and
   context-sensitively: every call site re-analyzes the callee with
   formals renamed to the actuals.

   Value granularity (see [Varset]): scalars are whole items; objects and
   collection elements are tracked per field, which is what the packing
   phase (§5) needs. *)

open Lang
module S = Set.Make (String)

type vkind =
  | Kscalar                (* int/float/bool/string/rectdomain *)
  | Kobj of string * string  (* object variable: base name, class *)
  | Kelem of string * string (* element of collection [base] of class *)
  | Kelem_prim of string     (* element of a collection of primitives *)
  | Kcoll of string * Ast.ty (* collection: base name, element type *)
  | Karr of string           (* array variable *)
  | Kopaque

type sets = { mutable gen : Varset.t; mutable cons : Varset.t }

(* One enclosing counted loop: index variable and its [lo, hi) bounds. *)
type loop_ctx = { li_var : string; li_lo : Section.bound; li_hi : Section.bound }

type ctx = {
  prog : Ast.program;
  outer_kinds : (string * vkind) list; (* globals, packet var, and every
                                          top-level declaration of the
                                          pipelined body *)
  mutable visiting : string list;      (* call-stack guard for recursion *)
  mutable cur_aliases : Alias.t option;
      (* may-alias classes of the segment under analysis: writes through
         a possibly-aliased reference must not claim a must-definition *)
}

(* The primitive-element pseudo-field for List<int>/List<float>. *)
let prim_field = "$val"

(* --- kinds ------------------------------------------------------------ *)

let kind_of_ty name (ty : Ast.ty) =
  match ty with
  | Ast.Tint | Ast.Tfloat | Ast.Tbool | Ast.Tstring | Ast.Tvoid
  | Ast.Trectdomain ->
      Kscalar
  | Ast.Tclass c -> Kobj (name, c)
  | Ast.Tlist elt -> Kcoll (name, elt)
  | Ast.Tarray _ -> Karr name

let class_fields prog cname =
  match Ast.find_class prog cname with
  | Some cd -> List.map snd cd.Ast.cd_fields
  | None -> []

(* Kind environment: innermost bindings first. *)
(* Whole-variable definitions are always must; writes through a
   reference are must only when the reference is provably unaliased. *)
let must_write ctx name =
  match ctx.cur_aliases with
  | None -> true
  | Some a -> Alias.unaliased a name

let lookup_kind ctx kenv name =
  match List.assoc_opt name kenv with
  | Some k -> k
  | None -> (
      match List.assoc_opt name ctx.outer_kinds with
      | Some k -> k
      | None -> Kopaque)

(* --- item construction ------------------------------------------------ *)

(* All items describing the full contents of a variable of kind [k]. *)
let items_of_whole ctx k =
  match k with
  | Kscalar -> []
  | Kobj (base, cls) ->
      List.map (fun f -> Varset.ElemField (base, f)) (class_fields ctx.prog cls)
  | Kelem (base, cls) ->
      List.map (fun f -> Varset.ElemField (base, f)) (class_fields ctx.prog cls)
  | Kelem_prim base -> [ Varset.ElemField (base, prim_field) ]
  | Kcoll (base, Ast.Tclass cls) ->
      Varset.Coll base
      :: List.map (fun f -> Varset.ElemField (base, f)) (class_fields ctx.prog cls)
  | Kcoll (base, _) -> [ Varset.Coll base; Varset.ElemField (base, prim_field) ]
  | Karr base -> [ Varset.Arr (base, Section.Whole) ]
  | Kopaque -> []

let items_of_var ctx kenv name =
  match lookup_kind ctx kenv name with
  | Kscalar | Kopaque -> [ Varset.Var name ]
  | k -> items_of_whole ctx k

(* --- sections from index expressions ---------------------------------- *)

let bound_of_expr (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Eint n -> Some (Section.Bconst n)
  | Ast.Evar v -> Some (Section.Bsym v)
  | Ast.Eruntime_define n -> Some (Section.Bsym ("runtime:" ^ n))
  | _ -> None

let bound_add b k =
  match b with
  | Section.Bconst n -> Section.Bconst (n + k)
  | Section.Bsym s -> if k = 0 then Section.Bsym s else Section.Bsym_off (s, k)
  | Section.Bsym_off (s, n) ->
      if n + k = 0 then Section.Bsym s else Section.Bsym_off (s, n + k)

(* Section touched by index expression [e] under the enclosing counted
   loops; [Whole] when not an affine function of a loop index. *)
let section_of_index loops (e : Ast.expr) =
  let of_var v =
    match List.find_opt (fun l -> l.li_var = v) loops with
    | Some l -> Some (Section.Range (l.li_lo, l.li_hi))
    | None -> None
  in
  match e.Ast.e with
  | Ast.Eint n -> Section.Range (Section.Bconst n, Section.Bconst (n + 1))
  | Ast.Evar v -> (
      match of_var v with
      | Some s -> s
      | None ->
          Section.Range (Section.Bsym v, Section.Bsym_off (v, 1)))
  | Ast.Ebinop (Ast.Add, { e = Ast.Evar v; _ }, { e = Ast.Eint k; _ })
  | Ast.Ebinop (Ast.Add, { e = Ast.Eint k; _ }, { e = Ast.Evar v; _ }) -> (
      match of_var v with
      | Some (Section.Range (lo, hi)) ->
          Section.Range (bound_add lo k, bound_add hi k)
      | _ -> Section.Whole)
  | Ast.Ebinop (Ast.Sub, { e = Ast.Evar v; _ }, { e = Ast.Eint k; _ }) -> (
      match of_var v with
      | Some (Section.Range (lo, hi)) ->
          Section.Range (bound_add lo (-k), bound_add hi (-k))
      | _ -> Section.Whole)
  | _ -> Section.Whole

(* --- set updates (reverse traversal) ----------------------------------- *)

let add_gen sets items =
  List.iter
    (fun i ->
      sets.gen <- Varset.add i sets.gen;
      sets.cons <- Varset.remove i sets.cons)
    items

let add_cons sets items =
  List.iter (fun i -> sets.cons <- Varset.add i sets.cons) items

(* Merge the sets of a composite statement [s] (loop body, callee) into the
   enclosing segment's sets, per Figure 2's loop rule:
   Cons(b) := (Cons(b) - Gen(s)) + Cons(s);  Gen(b) := Gen(b) + Gen(s). *)
let merge_composite sets ~gen_s ~cons_s ~keep_gen =
  if keep_gen then begin
    sets.cons <- Varset.diff sets.cons gen_s;
    sets.gen <- Varset.union sets.gen gen_s
  end;
  sets.cons <- Varset.union sets.cons cons_s

(* ------------------------------------------------------------------ *)
(* Expression uses                                                     *)
(* ------------------------------------------------------------------ *)

let rec cons_expr ctx kenv loops sets (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Eint _ | Ast.Efloat _ | Ast.Ebool _ | Ast.Estring _ | Ast.Enull
  | Ast.Eruntime_define _ ->
      ()
  | Ast.Evar v -> add_cons sets (items_of_var ctx kenv v)
  | Ast.Efield (o, f) -> cons_field ctx kenv loops sets o f
  | Ast.Eindex (a, i) ->
      cons_expr ctx kenv loops sets i;
      (match a.Ast.e with
      | Ast.Evar v -> (
          match lookup_kind ctx kenv v with
          | Karr base ->
              add_cons sets [ Varset.Arr (base, section_of_index loops i) ]
          | _ -> add_cons sets (items_of_var ctx kenv v))
      | _ -> cons_expr ctx kenv loops sets a)
  | Ast.Ebinop (_, a, b) ->
      cons_expr ctx kenv loops sets a;
      cons_expr ctx kenv loops sets b
  | Ast.Eunop (_, a) -> cons_expr ctx kenv loops sets a
  | Ast.Ecall (f, args) ->
      analyze_call ctx kenv loops sets ~fname:f ~recv:None ~args
  | Ast.Emethod (o, m, args) -> analyze_method ctx kenv loops sets o m args
  | Ast.Enew (_, args) -> List.iter (cons_expr ctx kenv loops sets) args
  | Ast.Enew_array (_, n) -> cons_expr ctx kenv loops sets n
  | Ast.Enew_list _ -> ()
  | Ast.Erange (lo, hi) ->
      cons_expr ctx kenv loops sets lo;
      cons_expr ctx kenv loops sets hi

and cons_field ctx kenv loops sets (o : Ast.expr) f =
  match o.Ast.e with
  | Ast.Evar v -> (
      match lookup_kind ctx kenv v with
      | Kobj (base, _) | Kelem (base, _) ->
          add_cons sets [ Varset.ElemField (base, f) ]
      | Karr base when f = "length" ->
          (* array length is collection structure, approximate by a
             zero-width section read *)
          add_cons sets [ Varset.Arr (base, Section.Range (Section.Bconst 0, Section.Bconst 0)) ]
      | _ -> add_cons sets (items_of_var ctx kenv v))
  | _ -> cons_expr ctx kenv loops sets o

(* ------------------------------------------------------------------ *)
(* Calls (interprocedural, context-sensitive)                           *)
(* ------------------------------------------------------------------ *)

(* Kind a formal receives from an actual argument expression. *)
and kind_of_actual ctx kenv (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Evar v -> (
      match lookup_kind ctx kenv v with
      | Kscalar -> None (* by-value; handled by cons at the call site *)
      | Kopaque -> None
      | k -> Some k)
  | _ -> None

and analyze_call ctx kenv loops sets ~fname ~recv ~args =
  match Ast.find_func ctx.prog fname with
  | Some fd -> analyze_user_call ctx kenv loops sets fd ~recv ~args
  | None ->
      (* builtin or extern: all arguments are consumed by value *)
      List.iter (cons_expr ctx kenv loops sets) args

and analyze_method ctx kenv loops sets recv m args =
  match recv.Ast.e with
  | Ast.Evar v -> (
      match lookup_kind ctx kenv v with
      | Kcoll (base, elt_ty) -> analyze_list_method ctx kenv loops sets base elt_ty m args
      | Kobj (_, cls) | Kelem (_, cls) -> (
          match Ast.find_class ctx.prog cls with
          | Some cd -> (
              match Ast.find_method cd m with
              | Some md ->
                  analyze_user_call ctx kenv loops sets md ~recv:(Some recv) ~args
              | None -> List.iter (cons_expr ctx kenv loops sets) args)
          | None -> List.iter (cons_expr ctx kenv loops sets) args)
      | _ ->
          cons_expr ctx kenv loops sets recv;
          List.iter (cons_expr ctx kenv loops sets) args)
  | _ ->
      cons_expr ctx kenv loops sets recv;
      List.iter (cons_expr ctx kenv loops sets) args

and analyze_list_method ctx kenv loops sets base elt_ty m args =
  match m with
  | "add" -> (
      (* adding an element defines the collection's structure and (for
         object elements) all element fields; the added value's fields are
         consumed (and typically resolved within the segment) *)
      if must_write ctx base then add_gen sets [ Varset.Coll base ];
      match (elt_ty, args) with
      | Ast.Tclass cls, [ a ] ->
          if must_write ctx base then
            add_gen sets
              (List.map
                 (fun f -> Varset.ElemField (base, f))
                 (class_fields ctx.prog cls));
          cons_expr ctx kenv loops sets a
      | _, [ a ] ->
          if must_write ctx base then
            add_gen sets [ Varset.ElemField (base, prim_field) ];
          cons_expr ctx kenv loops sets a
      | _ -> List.iter (cons_expr ctx kenv loops sets) args)
  | "size" -> add_cons sets [ Varset.Coll base ]
  | "get" ->
      List.iter (cons_expr ctx kenv loops sets) args;
      add_cons sets [ Varset.Coll base ];
      (* reading an element touches all its fields conservatively *)
      (match elt_ty with
      | Ast.Tclass cls ->
          add_cons sets
            (List.map (fun f -> Varset.ElemField (base, f)) (class_fields ctx.prog cls))
      | _ -> add_cons sets [ Varset.ElemField (base, prim_field) ])
  | "clear" -> add_gen sets [ Varset.Coll base ]
  | _ -> List.iter (cons_expr ctx kenv loops sets) args

and analyze_user_call ctx kenv loops sets fd ~recv ~args =
  if List.mem fd.Ast.fd_name ctx.visiting then begin
    (* recursive call: coarse summary — consume everything reachable *)
    (match recv with Some r -> cons_expr ctx kenv loops sets r | None -> ());
    List.iter (cons_expr ctx kenv loops sets) args
  end
  else begin
    ctx.visiting <- fd.Ast.fd_name :: ctx.visiting;
    (* Bind formals: reference kinds map to the actual's base; by-value
       formals consume the actual at the call site. *)
    let callee_kenv = ref [] in
    let self_cls =
      match recv with
      | Some r -> (
          match kind_of_actual ctx kenv r with
          | Some k ->
              callee_kenv := ("this", k) :: !callee_kenv;
              None
          | None ->
              cons_expr ctx kenv loops sets r;
              None)
      | None -> None
    in
    ignore self_cls;
    List.iter2
      (fun (fty, fname) actual ->
        match kind_of_actual ctx kenv actual with
        | Some k -> callee_kenv := (fname, k) :: !callee_kenv
        | None ->
            cons_expr ctx kenv loops sets actual;
            callee_kenv := (fname, kind_of_ty fname fty) :: !callee_kenv)
      fd.Ast.fd_params args;
    (* Names private to the callee: unmapped formals and local decls.
       Their items must not leak into the caller's sets. *)
    let mapped_bases =
      List.filter_map
        (fun (fname, k) ->
          match k with
          | Kobj (b, _) | Kelem (b, _) | Kelem_prim b | Kcoll (b, _) | Karr b
            when b <> fname ->
              Some fname
          | _ -> None)
        !callee_kenv
    in
    let private_names =
      let formals = List.map snd fd.Ast.fd_params in
      let locals = collect_decls fd.Ast.fd_body in
      S.union (S.of_list formals) (S.of_list locals)
      |> S.union (S.singleton "this")
      |> fun s -> S.diff s (S.of_list mapped_bases)
    in
    ignore private_names;
    let callee_sets = { gen = Varset.empty; cons = Varset.empty } in
    analyze_stmts_rev ctx !callee_kenv [] callee_sets fd.Ast.fd_body;
    (* Drop items rooted at callee-private names. *)
    let formals = S.of_list (List.map snd fd.Ast.fd_params) in
    let locals = S.of_list (collect_decls fd.Ast.fd_body) in
    let priv = S.add "this" (S.union formals locals) in
    (* A formal whose kind maps to a caller base produced items under the
       caller base already, so dropping formal-rooted items is safe. *)
    let keep item =
      let base =
        match item with
        | Varset.Var v -> v
        | Varset.Coll c -> c
        | Varset.ElemField (c, _) -> c
        | Varset.Arr (a, _) -> a
      in
      not (S.mem base priv)
    in
    let gen_s = Varset.filter keep callee_sets.gen in
    let cons_s = Varset.filter keep callee_sets.cons in
    merge_composite sets ~gen_s ~cons_s ~keep_gen:true;
    ctx.visiting <- List.tl ctx.visiting
  end

and collect_decls stmts =
  List.concat_map
    (fun (st : Ast.stmt) ->
      match st.Ast.s with
      | Ast.Sdecl (_, name, _) -> [ name ]
      | Ast.Sif (_, th, el) -> collect_decls th @ collect_decls el
      | Ast.Sfor (init, _, _, body) -> collect_decls [ init ] @ collect_decls body
      | Ast.Swhile (_, body) -> collect_decls body
      | Ast.Sforeach { fe_var; fe_body; _ } -> fe_var :: collect_decls fe_body
      | Ast.Sblock body -> collect_decls body
      | _ -> [])
    stmts

(* ------------------------------------------------------------------ *)
(* Lvalue definitions                                                   *)
(* ------------------------------------------------------------------ *)

and gen_lvalue ctx kenv loops sets (l : Ast.lvalue) =
  match l with
  | Ast.Lvar v -> (
      match lookup_kind ctx kenv v with
      | Kscalar | Kopaque -> add_gen sets [ Varset.Var v ]
      | k -> add_gen sets (items_of_whole ctx k))
  | Ast.Lfield (Ast.Lvar v, f) -> (
      match lookup_kind ctx kenv v with
      | Kobj (base, _) | Kelem (base, _) ->
          if must_write ctx v then add_gen sets [ Varset.ElemField (base, f) ]
      | _ -> ())
  | Ast.Lfield (inner, f) ->
      ignore f;
      (* nested path: the intermediate objects are read *)
      cons_lvalue_path ctx kenv loops sets inner
  | Ast.Lindex (Ast.Lvar v, i) -> (
      cons_expr ctx kenv loops sets i;
      match lookup_kind ctx kenv v with
      | Karr base ->
          let s = section_of_index loops i in
          (* a single a[i]= under a counted loop covers the section only
             when merged through the loop rule; at statement level the
             write is must for that section *)
          if must_write ctx v then add_gen sets [ Varset.Arr (base, s) ]
      | _ -> ())
  | Ast.Lindex (inner, i) ->
      cons_expr ctx kenv loops sets i;
      cons_lvalue_path ctx kenv loops sets inner

and cons_lvalue_path ctx kenv loops sets (l : Ast.lvalue) =
  match l with
  | Ast.Lvar v -> add_cons sets (items_of_var ctx kenv v)
  | Ast.Lfield (inner, f) -> (
      match inner with
      | Ast.Lvar v -> (
          match lookup_kind ctx kenv v with
          | Kobj (base, _) | Kelem (base, _) ->
              add_cons sets [ Varset.ElemField (base, f) ]
          | _ -> add_cons sets (items_of_var ctx kenv v))
      | _ -> cons_lvalue_path ctx kenv loops sets inner)
  | Ast.Lindex (inner, i) ->
      cons_expr ctx kenv loops sets i;
      cons_lvalue_path ctx kenv loops sets inner

(* The lvalue's own prior value is consumed (compound updates). *)
and cons_lvalue ctx kenv loops sets (l : Ast.lvalue) =
  match l with
  | Ast.Lvar v -> add_cons sets (items_of_var ctx kenv v)
  | Ast.Lfield (Ast.Lvar v, f) -> (
      match lookup_kind ctx kenv v with
      | Kobj (base, _) | Kelem (base, _) ->
          add_cons sets [ Varset.ElemField (base, f) ]
      | _ -> add_cons sets (items_of_var ctx kenv v))
  | Ast.Lfield (inner, _) -> cons_lvalue_path ctx kenv loops sets inner
  | Ast.Lindex (Ast.Lvar v, i) -> (
      cons_expr ctx kenv loops sets i;
      match lookup_kind ctx kenv v with
      | Karr base -> add_cons sets [ Varset.Arr (base, section_of_index loops i) ]
      | _ -> add_cons sets (items_of_var ctx kenv v))
  | Ast.Lindex (inner, i) ->
      cons_expr ctx kenv loops sets i;
      cons_lvalue_path ctx kenv loops sets inner

(* ------------------------------------------------------------------ *)
(* Statements (reverse traversal)                                       *)
(* ------------------------------------------------------------------ *)

(* Recognize the counted-loop header [for (int i = lo; i < hi; i = i+1)]. *)
and counted_loop_header (init : Ast.stmt) (cond : Ast.expr) (step : Ast.stmt) =
  let index_var, lo =
    match init.Ast.s with
    | Ast.Sdecl (Ast.Tint, v, Some lo) -> (Some v, bound_of_expr lo)
    | Ast.Sassign (Ast.Lvar v, lo) -> (Some v, bound_of_expr lo)
    | _ -> (None, None)
  in
  match (index_var, lo) with
  | Some v, Some lo -> (
      let hi =
        match cond.Ast.e with
        | Ast.Ebinop (Ast.Lt, { e = Ast.Evar v'; _ }, hi) when v' = v ->
            bound_of_expr hi
        | Ast.Ebinop (Ast.Le, { e = Ast.Evar v'; _ }, hi) when v' = v -> (
            match bound_of_expr hi with
            | Some b -> Some (bound_add b 1)
            | None -> None)
        | _ -> None
      in
      let unit_step =
        match step.Ast.s with
        | Ast.Sassign
            ( Ast.Lvar v',
              {
                e =
                  Ast.Ebinop (Ast.Add, { e = Ast.Evar v''; _ }, { e = Ast.Eint 1; _ });
                _;
              } ) ->
            v' = v && v'' = v
        | Ast.Supdate (Ast.Lvar v', Ast.Add, { e = Ast.Eint 1; _ }) -> v' = v
        | _ -> false
      in
      match (hi, unit_step) with
      | Some hi, true -> Some { li_var = v; li_lo = lo; li_hi = hi }
      | _ -> None)
  | _ -> None

and analyze_stmt_rev ctx kenv loops sets (st : Ast.stmt) : (string * vkind) list =
  (* Returns kind bindings introduced by this statement for *earlier*
     statements?  No: declarations bind for later statements; since we
     traverse in reverse we collect kinds in a pre-pass instead.  This
     function returns [] and relies on [kenv] already containing all
     declarations of the statement list (collected forward). *)
  (match st.Ast.s with
  | Ast.Sdecl (_, name, init) ->
      (* A declaration must-defines its contents only when the
         initializer constructs a fresh value (or zero-initializes);
         copying a reference ([T q = t;], [T q = xs.get(i);]) makes the
         new name an alias whose fields belong to the source object. *)
      let fresh_init =
        match init with
        | None -> true
        | Some { Ast.e = Ast.Enew _ | Ast.Enew_array _ | Ast.Enew_list _; _ }
          ->
            true
        | Some { Ast.e = Ast.Ecall _; _ } -> true
        | Some
            {
              Ast.e =
                ( Ast.Eint _ | Ast.Efloat _ | Ast.Ebool _ | Ast.Estring _
                | Ast.Erange _ | Ast.Eruntime_define _ | Ast.Ebinop _
                | Ast.Eunop _ );
              _;
            } ->
            true
        | Some _ -> false
      in
      (match lookup_kind ctx kenv name with
      | Kscalar | Kopaque -> add_gen sets [ Varset.Var name ]
      | k -> if fresh_init then add_gen sets (items_of_whole ctx k));
      (match init with
      | None -> ()
      | Some e -> cons_expr ctx kenv loops sets e)
  | Ast.Sassign (l, e) ->
      gen_lvalue ctx kenv loops sets l;
      cons_expr ctx kenv loops sets e
  | Ast.Supdate (l, _, e) ->
      gen_lvalue ctx kenv loops sets l;
      cons_lvalue ctx kenv loops sets l;
      cons_expr ctx kenv loops sets e
  | Ast.Sif (c, th, el) ->
      (* branch Gen is not added (Figure 2's conditional rule) *)
      let branch body =
        let s = { gen = Varset.empty; cons = Varset.empty } in
        analyze_stmts_rev ctx kenv loops s body;
        let locals = S.of_list (collect_decls body) in
        let keep item =
          let base =
            match item with
            | Varset.Var v -> v
            | Varset.Coll c -> c
            | Varset.ElemField (c, _) -> c
            | Varset.Arr (a, _) -> a
          in
          not (S.mem base locals)
        in
        Varset.filter keep s.cons
      in
      merge_composite sets ~gen_s:Varset.empty ~cons_s:(branch th) ~keep_gen:false;
      merge_composite sets ~gen_s:Varset.empty ~cons_s:(branch el) ~keep_gen:false;
      cons_expr ctx kenv loops sets c
  | Ast.Sfor (init, cond, step, body) ->
      let loop = counted_loop_header init cond step in
      let inner_loops = match loop with Some l -> l :: loops | None -> loops in
      let inner_kenv =
        match init.Ast.s with
        | Ast.Sdecl (ty, v, _) -> (v, kind_of_ty v ty) :: kenv
        | _ -> kenv
      in
      let body_kenv = collect_kinds ctx inner_kenv body in
      let s = { gen = Varset.empty; cons = Varset.empty } in
      analyze_stmts_rev ctx body_kenv inner_loops s body;
      (* the loop's own index and body locals are private *)
      let locals =
        let l = collect_decls body in
        match init.Ast.s with
        | Ast.Sdecl (_, v, _) -> v :: l
        | _ -> l
      in
      let gen_s, cons_s = drop_private ~locals s in
      let gen_s =
        match loop with
        | Some _ -> gen_s
        | None ->
            (* unrecognized loop shape: keep scalar/field Gen (>=1
               iteration), drop array sections we cannot justify *)
            Varset.filter (function Varset.Arr _ -> false | _ -> true) gen_s
      in
      merge_composite sets ~gen_s ~cons_s ~keep_gen:true;
      (* header expressions *)
      (match init.Ast.s with
      | Ast.Sdecl (_, _, Some e) -> cons_expr ctx kenv loops sets e
      | Ast.Sassign (_, e) -> cons_expr ctx kenv loops sets e
      | _ -> ());
      cons_expr ctx kenv loops sets cond
  | Ast.Swhile (c, body) ->
      let body_kenv = collect_kinds ctx kenv body in
      let s = { gen = Varset.empty; cons = Varset.empty } in
      analyze_stmts_rev ctx body_kenv loops s body;
      let gen_s, cons_s = drop_private ~locals:(collect_decls body) s in
      let gen_s = Varset.filter (function Varset.Arr _ -> false | _ -> true) gen_s in
      merge_composite sets ~gen_s ~cons_s ~keep_gen:true;
      cons_expr ctx kenv loops sets c
  | Ast.Sforeach { fe_var; fe_coll; fe_where; fe_body } ->
      let coll_kind =
        match fe_coll.Ast.e with
        | Ast.Evar v -> lookup_kind ctx kenv v
        | _ -> Kopaque
      in
      let elem_kind, coll_base =
        match coll_kind with
        | Kcoll (base, Ast.Tclass cls) -> (Kelem (base, cls), Some base)
        | Kcoll (base, _) -> (Kelem_prim base, Some base)
        | Karr base -> (Kscalar, Some base)
        | _ -> (Kscalar, None)
      in
      let inner_kenv = (fe_var, elem_kind) :: kenv in
      let body_kenv = collect_kinds ctx inner_kenv fe_body in
      let s = { gen = Varset.empty; cons = Varset.empty } in
      analyze_stmts_rev ctx body_kenv [] s fe_body;
      (match fe_where with
      | None -> ()
      | Some w -> cons_expr ctx body_kenv [] s w);
      let gen_s, cons_s =
        drop_private ~locals:(fe_var :: collect_decls fe_body) s
      in
      (* a where-clause makes per-element writes to the iterated
         collection partial: they cannot be must-defined *)
      let gen_s =
        match (fe_where, coll_base) with
        | Some _, Some base ->
            Varset.filter
              (function
                | Varset.ElemField (c, _) when c = base -> false
                | Varset.Arr _ -> false
                | _ -> true)
              gen_s
        | Some _, None ->
            Varset.filter (function Varset.Arr _ -> false | _ -> true) gen_s
        | None, _ -> gen_s
      in
      merge_composite sets ~gen_s ~cons_s ~keep_gen:true;
      (* iterating consumes the collection structure *)
      (match coll_kind with
      | Kcoll (base, _) -> add_cons sets [ Varset.Coll base ]
      | Karr base -> add_cons sets [ Varset.Arr (base, Section.Whole) ]
      | _ -> cons_expr ctx kenv loops sets fe_coll);
      (match fe_coll.Ast.e with
      | Ast.Evar _ -> ()
      | _ -> cons_expr ctx kenv loops sets fe_coll)
  | Ast.Sexpr e -> cons_expr ctx kenv loops sets e
  | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue -> ()
  | Ast.Sreturn (Some e) -> cons_expr ctx kenv loops sets e
  | Ast.Sblock body ->
      let body_kenv = collect_kinds ctx kenv body in
      let s = { gen = Varset.empty; cons = Varset.empty } in
      analyze_stmts_rev ctx body_kenv loops s body;
      let gen_s, cons_s = drop_private ~locals:(collect_decls body) s in
      merge_composite sets ~gen_s ~cons_s ~keep_gen:true);
  []

and drop_private ~locals s =
  let locals = S.of_list locals in
  let keep item =
    let base =
      match item with
      | Varset.Var v -> v
      | Varset.Coll c -> c
      | Varset.ElemField (c, _) -> c
      | Varset.Arr (a, _) -> a
    in
    not (S.mem base locals)
  in
  (Varset.filter keep s.gen, Varset.filter keep s.cons)

and analyze_stmts_rev ctx kenv loops sets stmts =
  List.iter
    (fun st -> ignore (analyze_stmt_rev ctx kenv loops sets st))
    (List.rev stmts)

(* Collect kinds of variables declared directly in a statement list (used
   to seed the kind environment before the reverse traversal). *)
and collect_kinds _ctx kenv stmts =
  List.fold_left
    (fun kenv (st : Ast.stmt) ->
      match st.Ast.s with
      | Ast.Sdecl (ty, name, _) -> (name, kind_of_ty name ty) :: kenv
      | _ -> kenv)
    kenv stmts

(* ------------------------------------------------------------------ *)
(* Public interface                                                     *)
(* ------------------------------------------------------------------ *)

(* Kind environment of the pipelined body: globals, the packet variable,
   and every top-level declaration in any segment (names are unique at
   the top level of the body; the type checker enforces per-scope
   uniqueness). *)
let outer_kinds_of_program (prog : Ast.program) =
  let globals =
    List.map (fun g -> (g.Ast.gd_name, kind_of_ty g.Ast.gd_name g.Ast.gd_ty)) prog.Ast.globals
  in
  let packet = (prog.Ast.pipeline.Ast.pd_var, Kscalar) in
  let top_decls =
    List.filter_map
      (fun (st : Ast.stmt) ->
        match st.Ast.s with
        | Ast.Sdecl (ty, name, _) -> Some (name, kind_of_ty name ty)
        | _ -> None)
      prog.Ast.pipeline.Ast.pd_body
  in
  packet :: (globals @ top_decls)

let create_ctx (prog : Ast.program) =
  {
    prog;
    outer_kinds = outer_kinds_of_program prog;
    visiting = [];
    cur_aliases = None;
  }

(* Make a context whose outer kinds come from an explicit (already
   fissioned/segmented) body. *)
let create_ctx_for_body (prog : Ast.program) (body : Ast.stmt list) =
  let globals =
    List.map (fun g -> (g.Ast.gd_name, kind_of_ty g.Ast.gd_name g.Ast.gd_ty)) prog.Ast.globals
  in
  let packet = (prog.Ast.pipeline.Ast.pd_var, Kscalar) in
  let top_decls =
    List.filter_map
      (fun (st : Ast.stmt) ->
        match st.Ast.s with
        | Ast.Sdecl (ty, name, _) -> Some (name, kind_of_ty name ty)
        | _ -> None)
      body
  in
  {
    prog;
    outer_kinds = packet :: (globals @ top_decls);
    visiting = [];
    cur_aliases = None;
  }

(* Gen/Cons of one segment (a list of top-level statements).

   Gen is must-information (Figure 2), so writes through a possibly
   aliased reference cannot claim a definition: the per-segment may-alias
   classes ([Alias]) demote Gen items rooted at aliased object or
   collection variables. *)
let analyze_segment ctx (stmts : Ast.stmt list) =
  let kenv = collect_kinds ctx ctx.outer_kinds stmts in
  let is_ref name =
    match lookup_kind ctx kenv name with
    | Kobj _ | Kcoll _ | Karr _ -> true
    | Kscalar | Kelem _ | Kelem_prim _ | Kopaque -> false
  in
  ctx.cur_aliases <- Some (Alias.of_stmts ~is_ref stmts);
  let sets = { gen = Varset.empty; cons = Varset.empty } in
  analyze_stmts_rev ctx ctx.outer_kinds [] sets stmts;
  ctx.cur_aliases <- None;
  (sets.gen, sets.cons)

(* The may-alias classes of a statement list under this context's kind
   environment (exposed for the boundary-splitting check in Compile). *)
let aliases_of ctx (stmts : Ast.stmt list) =
  let kenv = collect_kinds ctx ctx.outer_kinds stmts in
  let is_ref name =
    match lookup_kind ctx kenv name with
    | Kobj _ | Kcoll _ | Karr _ -> true
    | Kscalar | Kelem _ | Kelem_prim _ | Kopaque -> false
  in
  Alias.of_stmts ~is_ref stmts

(* Names of extern functions (not defined in the program, not builtin)
   called anywhere in the statements — used to pin data sources/sinks. *)
let externs_called prog stmts =
  let acc = ref S.empty in
  let builtin_names =
    S.of_list (List.map (fun e -> e.Typecheck.ex_name) Typecheck.builtin_externs)
  in
  let rec in_expr (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Ecall (f, args) ->
        if Ast.find_func prog f = None && not (S.mem f builtin_names) then
          acc := S.add f !acc;
        List.iter in_expr args
    | Ast.Efield (o, _) -> in_expr o
    | Ast.Eindex (a, i) ->
        in_expr a;
        in_expr i
    | Ast.Ebinop (_, a, b) ->
        in_expr a;
        in_expr b
    | Ast.Eunop (_, a) -> in_expr a
    | Ast.Emethod (o, _, args) ->
        in_expr o;
        List.iter in_expr args
    | Ast.Enew (_, args) -> List.iter in_expr args
    | Ast.Enew_array (_, n) -> in_expr n
    | Ast.Erange (a, b) ->
        in_expr a;
        in_expr b
    | _ -> ()
  in
  let rec in_stmt (st : Ast.stmt) =
    match st.Ast.s with
    | Ast.Sdecl (_, _, Some e) -> in_expr e
    | Ast.Sdecl (_, _, None) -> ()
    | Ast.Sassign (_, e) | Ast.Supdate (_, _, e) | Ast.Sexpr e -> in_expr e
    | Ast.Sif (c, th, el) ->
        in_expr c;
        List.iter in_stmt th;
        List.iter in_stmt el
    | Ast.Sfor (i, c, s, b) ->
        in_stmt i;
        in_expr c;
        in_stmt s;
        List.iter in_stmt b
    | Ast.Swhile (c, b) ->
        in_expr c;
        List.iter in_stmt b
    | Ast.Sforeach { fe_coll; fe_where; fe_body; _ } ->
        in_expr fe_coll;
        (match fe_where with Some w -> in_expr w | None -> ());
        List.iter in_stmt fe_body
    | Ast.Sreturn (Some e) -> in_expr e
    | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue -> ()
    | Ast.Sblock b -> List.iter in_stmt b
  in
  List.iter in_stmt stmts;
  !acc
