(* The candidate filter boundary graph (§4.1).

   Nodes are candidate filter boundaries plus a start node that
   pre-dominates and an end node that post-dominates everything; an edge
   connects two adjacent boundaries and carries the code between them.
   After loop fission the graph is acyclic; a conditional whose branches
   contain candidate boundaries forks the graph, and a *flow path* is any
   start-to-end path.

   The chain produced by [Boundary.segments_of_body] is the special case
   the code generator supports (conditionals kept atomic); this module
   implements the general DAG formulation: construction, flow-path
   enumeration, and the backward ReqComm propagation over the graph —
   at a fork, a value is required if any outgoing path requires it
   (may-information, hence the union). *)

open Lang

type edge = {
  e_src : int;
  e_dst : int;
  e_code : Ast.stmt list;  (* the atomic filter on this edge *)
  e_label : string;
}

type t = {
  n_nodes : int;
  start : int;
  stop : int;
  edges : edge list;
}

let out_edges g n = List.filter (fun e -> e.e_src = n) g.edges
let in_edges g n = List.filter (fun e -> e.e_dst = n) g.edges

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

(* Does a statement list contain any boundary-worthy statement (so that a
   conditional around it must fork the graph rather than stay atomic)? *)
let rec contains_boundary stmts =
  List.exists
    (fun (st : Ast.stmt) ->
      Boundary.boundary_worthy st
      ||
      match st.Ast.s with
      | Ast.Sblock body -> contains_boundary body
      | _ -> false)
    stmts

type builder = {
  mutable next : int;
  mutable built : edge list;
}

let fresh b =
  let n = b.next in
  b.next <- n + 1;
  n

let add_edge b ~src ~dst ~code ~label =
  b.built <- { e_src = src; e_dst = dst; e_code = code; e_label = label } :: b.built

(* Lay a (fissioned) statement list between [src] and [dst].  Consecutive
   plain statements glue into the following segment exactly like the
   chain construction; a conditional containing boundaries becomes a
   fork/join diamond whose guard evaluation travels with both branch
   edges (each branch is entered only when the packet takes that path). *)
let rec lay b ~src ~dst (stmts : Ast.stmt list) =
  (* split into runs: [run] is the pending plain prefix *)
  let flush_segment ~src ~dst pending label =
    add_edge b ~src ~dst ~code:(List.rev pending) ~label
  in
  let rec go src pending = function
    | [] ->
        if pending = [] then begin
          if src <> dst then
            add_edge b ~src ~dst ~code:[] ~label:"(empty)"
        end
        else flush_segment ~src ~dst pending "tail"
    | (st : Ast.stmt) :: rest -> (
        match st.Ast.s with
        | Ast.Sif (cond, th, el)
          when contains_boundary th || contains_boundary el ->
            (* fork: boundary before and after the conditional *)
            let fork = fresh b in
            (if pending = [] then begin
               if src <> fork then add_edge b ~src ~dst:fork ~code:[] ~label:"(empty)"
             end
             else flush_segment ~src ~dst:fork pending "pre-branch");
            let join = fresh b in
            (* the guard is evaluated on entry to either branch; encode it
               as a marker statement so analyses see the condition's
               uses *)
            let guard = Ast.mk_stmt (Ast.Sexpr cond) in
            lay b ~src:fork ~dst:join (guard :: th);
            lay b ~src:fork ~dst:join (guard :: el);
            go join [] rest
        | _ when Boundary.boundary_worthy st ->
            let nxt = if rest = [] then dst else fresh b in
            flush_segment ~src ~dst:nxt (st :: pending)
              (if pending = [] && rest = [] then "last" else "seg");
            if rest = [] then () else go nxt [] rest
        | _ -> go src (st :: pending) rest)
  in
  go src [] stmts

(* Build the graph of a pipelined body (fission is applied first). *)
let build (body : Ast.stmt list) : t =
  let b = { next = 2; built = [] } in
  let start = 0 and stop = 1 in
  lay b ~src:start ~dst:stop (Boundary.fission_body body);
  { n_nodes = b.next; start; stop; edges = List.rev b.built }

(* ------------------------------------------------------------------ *)
(* Flow paths                                                           *)
(* ------------------------------------------------------------------ *)

(* All start-to-end paths (the graph is acyclic by construction). *)
let flow_paths (g : t) : edge list list =
  let rec go node =
    if node = g.stop then [ [] ]
    else
      List.concat_map
        (fun e -> List.map (fun rest -> e :: rest) (go e.e_dst))
        (out_edges g node)
  in
  go g.start

(* ------------------------------------------------------------------ *)
(* ReqComm over the graph                                               *)
(* ------------------------------------------------------------------ *)

(* Reverse topological order of nodes (Kahn on reversed edges). *)
let reverse_topo (g : t) : int list =
  let out_deg = Array.make g.n_nodes 0 in
  List.iter (fun e -> out_deg.(e.e_src) <- out_deg.(e.e_src) + 1) g.edges;
  let ready = Queue.create () in
  for n = 0 to g.n_nodes - 1 do
    if out_deg.(n) = 0 then Queue.push n ready
  done;
  let order = ref [] in
  while not (Queue.is_empty ready) do
    let n = Queue.pop ready in
    order := n :: !order;
    List.iter
      (fun e ->
        out_deg.(e.e_src) <- out_deg.(e.e_src) - 1;
        if out_deg.(e.e_src) = 0 then Queue.push e.e_src ready)
      (in_edges g n)
  done;
  List.rev !order

(* ReqComm at every node: R(end) = {}; for an edge e,
   contribution(e) = (R(dst e) - Gen(code e)) + Cons(code e); at a node
   with several outgoing edges the contributions union (a value is
   needed if any path needs it). *)
let reqcomm (prog : Ast.program) (g : t) : Varset.t array =
  let ctx =
    Gencons.create_ctx_for_body prog
      (List.concat_map (fun e -> e.e_code) g.edges)
  in
  let r = Array.make g.n_nodes Varset.empty in
  let order = reverse_topo g in
  List.iter
    (fun n ->
      if n <> g.stop then
        r.(n) <-
          List.fold_left
            (fun acc e ->
              let gen, cons = Gencons.analyze_segment ctx e.e_code in
              Varset.union acc
                (Varset.union (Varset.diff r.(e.e_dst) gen) cons))
            Varset.empty (out_edges g n))
    order;
  r

(* A chain graph (no forks) is what the code generator supports. *)
let is_chain (g : t) =
  List.for_all (fun n -> List.length (out_edges g n) <= 1)
    (List.init g.n_nodes (fun i -> i))

let pp ppf (g : t) =
  Fmt.pf ppf "boundary graph: %d nodes, %d edges@\n" g.n_nodes
    (List.length g.edges);
  List.iter
    (fun e ->
      Fmt.pf ppf "  %d -> %d [%s] (%d stmts)@\n" e.e_src e.e_dst e.e_label
        (List.length e.e_code))
    g.edges
