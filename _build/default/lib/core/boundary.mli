(** Candidate filter boundaries and loop fission (§4.1).

    The compiler considers boundaries at the start/end of foreach loops,
    at conditionals, and at the start/end of function calls; any other
    loop must live entirely inside one filter.  If candidates would fall
    inside a foreach, the loop is fissioned first.  The result is the
    sequence of atomic filters f_1 .. f_{n+1} separated by the n
    candidate boundaries of the decomposition algorithm (§4.4). *)

open Lang

(** One atomic filter: a run of top-level statements. *)
type segment = {
  seg_index : int;            (** position in f_1 .. f_{n+1} (0-based) *)
  seg_stmts : Ast.stmt list;
  seg_label : string;         (** human-readable description *)
}

val pp_segment : Format.formatter -> segment -> unit

(** Legal split positions inside a foreach body: no body-local scalar
    lives across the split, and no outer variable written before it is
    read after it (which would reorder element-wise effects). *)
val foreach_split_points : Ast.foreach -> int list

(** Fission every top-level foreach of a pipelined body at all its legal
    split points.  Semantics-preserving under the foreach independence
    contract (property-tested against the interpreter). *)
val fission_body : Ast.stmt list -> Ast.stmt list

(** Is a boundary allowed immediately before this statement?  True for
    foreach, conditionals, loops, call statements, and declarations or
    assignments whose right-hand side is a non-builtin call. *)
val boundary_worthy : Ast.stmt -> bool

(** Partition an (already fissioned) statement list into segments; plain
    statements glue onto the following boundary-worthy statement. *)
val segments_of_stmts : Ast.stmt list -> segment list

(** The full phase: {!fission_body} then {!segments_of_stmts}. *)
val segments_of_body : Ast.stmt list -> segment list

(** Number of candidate boundaries (segments minus one). *)
val boundary_count : segment list -> int
