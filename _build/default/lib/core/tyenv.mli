(** Types of the variables visible at filter boundaries: globals, the
    packet variable, and the top-level declarations of the (fissioned)
    pipelined body.  Packing and code generation consult this map to
    decide how each ReqComm item is serialized. *)

open Lang

type t = (string * Ast.ty) list

val of_body : Ast.program -> Ast.stmt list -> t
val of_segments : Ast.program -> Boundary.segment list -> t
val find : t -> string -> Ast.ty option

(** Declared type of field [f] of class [cname]. *)
val field_ty : Ast.program -> string -> string -> Ast.ty option
