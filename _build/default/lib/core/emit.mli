(** Human-readable rendering of the generated filters: the unpack loops
    (Figure 4's instance-wise and field-wise shapes), the code segments
    placed on each filter, the pack loops, and the end-of-stream
    reduction behaviour. *)

(** Render every filter of a code-generation plan. *)
val emit_plan : Codegen.plan -> string
