(** The candidate filter boundary graph (§4.1).

    Nodes are candidate boundaries plus a pre-dominating start node and a
    post-dominating end node; edges carry the code between adjacent
    boundaries.  After loop fission the graph is acyclic; a conditional
    whose branches contain candidate boundaries forks it, and a flow path
    is any start-to-end path.  The chain case (no forks) is what the code
    generator supports; this module provides the general DAG analyses. *)

open Lang

type edge = {
  e_src : int;
  e_dst : int;
  e_code : Ast.stmt list;  (** the atomic filter on this edge *)
  e_label : string;
}

type t = {
  n_nodes : int;
  start : int;
  stop : int;
  edges : edge list;
}

val out_edges : t -> int -> edge list
val in_edges : t -> int -> edge list

(** Build the graph of a pipelined body (loop fission is applied
    first).  Conditionals whose branches contain candidate boundaries
    become fork/join diamonds; the guard expression travels with both
    branch edges. *)
val build : Ast.stmt list -> t

(** All start-to-end paths. *)
val flow_paths : t -> edge list list

(** ReqComm at every node, by backward propagation in reverse topological
    order; at a fork a value is required if any outgoing path requires
    it. *)
val reqcomm : Ast.program -> t -> Varset.t array

(** No forks: the shape the code generator supports. *)
val is_chain : t -> bool

val pp : Format.formatter -> t -> unit
