(* The pipeline cost model (§4.3).

   The environment is a linear pipeline of m computing units C_1 .. C_m
   joined by m-1 links L_1 .. L_{m-1}.  Packets are assumed equal-sized,
   units uniform over time, links of fixed bandwidth, so one stage is the
   bottleneck for every packet and the total execution time is

     (N - 1) * T(bottleneck) + sum_i T(C_i) + sum_i T(L_i).

   Computation time of a filter is its (weighted) operation count divided
   by the unit's power; communication time of a link is the transferred
   volume divided by bandwidth, plus a per-buffer latency. *)

type unit_spec = {
  power : float; (* weighted operations per second *)
}

type link_spec = {
  bandwidth : float; (* bytes per second *)
  latency : float;   (* seconds per buffer *)
}

type pipeline = {
  units : unit_spec array; (* length m *)
  links : link_spec array; (* length m - 1 *)
}

let width_of p = Array.length p.units

let make_pipeline ~powers ~bandwidths ?(latency = 0.0) () =
  if Array.length bandwidths <> Array.length powers - 1 then
    invalid_arg "make_pipeline: need one link fewer than units";
  {
    units = Array.map (fun power -> { power }) powers;
    links = Array.map (fun bandwidth -> { bandwidth; latency }) bandwidths;
  }

(* Uniform pipeline, the configuration of the paper's experiments. *)
let uniform ~m ~power ~bandwidth ?(latency = 0.0) () =
  {
    units = Array.init m (fun _ -> { power });
    links = Array.init (m - 1) (fun _ -> { bandwidth; latency });
  }

(* Per-packet workload profile of a segmented program:
   - [task.(i)]: weighted operations executed by segment i per packet;
   - [vol_out.(i)]: bytes produced by segment i per packet (the packed
     ReqComm at the boundary after it); [vol_out.(n)] is the final result
     amortized per packet;
   - [packets]: N. *)
type profile = {
  task : float array;
  vol_out : float array;
  packets : int;
}

let segment_count profile = Array.length profile.task

let cost_comp (u : unit_spec) task = task /. u.power

let cost_comm (l : link_spec) volume = l.latency +. (volume /. l.bandwidth)

(* A decomposition maps each segment to a computing unit (1-based,
   nondecreasing). *)
type assignment = int array

let validate_assignment p profile (a : assignment) =
  let m = width_of p in
  let n1 = segment_count profile in
  if Array.length a <> n1 then
    invalid_arg "assignment length must equal segment count";
  Array.iteri
    (fun i u ->
      if u < 1 || u > m then invalid_arg "assignment unit out of range";
      if i > 0 && u < a.(i - 1) then
        invalid_arg "assignment must be nondecreasing")
    a

(* Per-stage times of a decomposition: unit loads and link volumes. *)
type stage_times = {
  unit_time : float array; (* length m *)
  link_time : float array; (* length m - 1 *)
}

let stage_times p profile (a : assignment) =
  validate_assignment p profile a;
  let m = width_of p in
  let unit_load = Array.make m 0.0 in
  Array.iteri
    (fun i u -> unit_load.(u - 1) <- unit_load.(u - 1) +. profile.task.(i))
    a;
  (* link l (1-based) carries the output of the last segment at or before
     the boundary between unit l and l+1 *)
  (* Links upstream of the first occupied unit carry no traffic at all
     (Figure 3's base case places f_1 directly on its unit), so they get
     no latency either; every other link carries the output of the last
     segment at or before it. *)
  let link_time = Array.make (m - 1) 0.0 in
  for l = 1 to m - 1 do
    let last = ref (-1) in
    Array.iteri (fun i u -> if u <= l then last := i) a;
    if !last >= 0 then
      link_time.(l - 1) <- cost_comm p.links.(l - 1) profile.vol_out.(!last)
  done;
  {
    unit_time = Array.mapi (fun i load -> cost_comp p.units.(i) load) unit_load;
    link_time;
  }

(* Total pipelined execution time under the paper's formula. *)
let total_time p profile (a : assignment) =
  let st = stage_times p profile a in
  let stages = Array.append st.unit_time st.link_time in
  let bottleneck = Array.fold_left max 0.0 stages in
  let fill = Array.fold_left ( +. ) 0.0 stages in
  (float_of_int (profile.packets - 1) *. bottleneck) +. fill

(* Single-packet latency (the additive objective minimized by the
   dynamic program of §4.4). *)
let latency_time p profile (a : assignment) =
  let st = stage_times p profile a in
  Array.fold_left ( +. ) 0.0 (Array.append st.unit_time st.link_time)

let pp_assignment ppf (a : assignment) =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "; ") int) a

(* Re-express a measured per-packet profile at a different packet count
   for the same total data (§8: "automatically choosing the packet size").
   Per-packet task and volumes scale inversely with the packet count (the
   amortized final-result term keeps its run total); the per-buffer
   latency is charged once per packet by [cost_comm] either way, which is
   exactly why fewer, larger packets can win — and why too few packets
   forfeit pipeline overlap via the (N-1) factor. *)
let rescale_profile (profile : profile) ~(packets : int) : profile =
  if packets <= 0 then invalid_arg "rescale_profile: packets <= 0";
  let ratio = float_of_int profile.packets /. float_of_int packets in
  {
    task = Array.map (fun t -> t *. ratio) profile.task;
    vol_out = Array.map (fun v -> v *. ratio) profile.vol_out;
    packets;
  }
