(** The pipeline cost model (§4.3).

    A linear pipeline of m computing units C_1 .. C_m joined by m-1
    links.  Packets are equal-sized and resources uniform over time, so
    one stage bottlenecks every packet and the total execution time is

    {v (N - 1) * T(bottleneck) + sum_i T(C_i) + sum_i T(L_i) v}

    Computation time of a filter is its weighted operation count divided
    by the unit's power; communication time is volume over bandwidth plus
    a per-buffer latency. *)

type unit_spec = { power : float (** weighted operations per second *) }

type link_spec = {
  bandwidth : float;  (** bytes per second *)
  latency : float;    (** seconds per buffer *)
}

type pipeline = {
  units : unit_spec array;  (** length m *)
  links : link_spec array;  (** length m-1 *)
}

(** Number of units m. *)
val width_of : pipeline -> int

(** @raise Invalid_argument unless there is one link fewer than units. *)
val make_pipeline :
  powers:float array ->
  bandwidths:float array ->
  ?latency:float ->
  unit ->
  pipeline

(** Uniform pipeline (the paper's experimental configuration). *)
val uniform :
  m:int -> power:float -> bandwidth:float -> ?latency:float -> unit -> pipeline

(** Per-packet workload of a segmented program: [task.(i)] weighted
    operations of segment i, [vol_out.(i)] bytes it emits ([vol_out] of
    the last segment is the final result amortized per packet), and the
    packet count N. *)
type profile = {
  task : float array;
  vol_out : float array;
  packets : int;
}

val segment_count : profile -> int

val cost_comp : unit_spec -> float -> float
val cost_comm : link_spec -> float -> float

(** A decomposition: the 1-based unit of each segment, nondecreasing. *)
type assignment = int array

(** @raise Invalid_argument on wrong length, out-of-range or decreasing
    assignments. *)
val validate_assignment : pipeline -> profile -> assignment -> unit

type stage_times = {
  unit_time : float array;  (** per-packet busy time of each unit *)
  link_time : float array;  (** per-packet busy time of each link *)
}

(** Per-stage times; links upstream of the first occupied unit carry
    nothing (Figure 3's base case). *)
val stage_times : pipeline -> profile -> assignment -> stage_times

(** Total pipelined execution time under the paper's formula. *)
val total_time : pipeline -> profile -> assignment -> float

(** Single-packet latency: the additive objective of the Figure 3 DP. *)
val latency_time : pipeline -> profile -> assignment -> float

val pp_assignment : Format.formatter -> assignment -> unit

(** Re-express a measured per-packet profile at a different packet count
    for the same total data (§8 future work: packet-size selection).
    Per-packet task and volumes scale inversely with the count.
    @raise Invalid_argument when [packets <= 0]. *)
val rescale_profile : profile -> packets:int -> profile
