lib/core/decompose.ml: Array Costmodel Fmt List
