lib/core/emit.ml: Array Ast Boundary Buffer Codegen Lang List Packing Pretty Printf Section Set String
