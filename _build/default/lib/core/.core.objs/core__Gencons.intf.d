lib/core/gencons.mli: Alias Ast Lang Set String Varset
