lib/core/codegen.ml: Array Ast Boundary Bytes Costmodel Datacutter Filter Hashtbl Interp Lang List Objpack Opcount Packing Printf Reqcomm Set String Topology Tyenv Value Varset
