lib/core/tyenv.ml: Ast Boundary Lang List Option
