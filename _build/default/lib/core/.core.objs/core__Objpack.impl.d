lib/core/objpack.ml: Ast Buffer Bytes Lang List Packing Value
