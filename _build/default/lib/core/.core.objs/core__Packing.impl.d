lib/core/packing.ml: Array Ast Buffer Bytes Fmt Gencons Hashtbl Int64 Lang List Map Reqcomm Section String Tyenv Value Varset
