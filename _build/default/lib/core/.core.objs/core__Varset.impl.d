lib/core/varset.ml: Fmt List Map Printf Section String
