lib/core/reqcomm.mli: Ast Boundary Format Lang Set String Varset
