lib/core/section.mli: Format
