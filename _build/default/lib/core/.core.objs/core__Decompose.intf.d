lib/core/decompose.mli: Costmodel Format
