lib/core/objpack.mli: Ast Bytes Lang Value
