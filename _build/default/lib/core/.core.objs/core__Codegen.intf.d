lib/core/codegen.mli: Ast Boundary Costmodel Datacutter Filter Interp Lang Packing Reqcomm Set String Topology Tyenv Value
