lib/core/emit.mli: Codegen
