lib/core/alias.mli: Ast Lang
