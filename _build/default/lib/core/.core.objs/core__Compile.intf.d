lib/core/compile.mli: Ast Boundary Codegen Costmodel Datacutter Decompose Format Interp Lang Packing Par_runtime Profile Reqcomm Sim_runtime Tyenv Typecheck Value
