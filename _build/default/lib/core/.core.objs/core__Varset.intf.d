lib/core/varset.mli: Format Section
