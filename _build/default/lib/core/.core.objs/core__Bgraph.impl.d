lib/core/bgraph.ml: Array Ast Boundary Fmt Gencons Lang List Queue Varset
