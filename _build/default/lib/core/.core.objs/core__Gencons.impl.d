lib/core/gencons.ml: Alias Ast Lang List Section Set String Typecheck Varset
