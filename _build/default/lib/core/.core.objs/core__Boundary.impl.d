lib/core/boundary.ml: Array Ast Fmt Lang List Pretty Printf Set String Typecheck
