lib/core/packing.mli: Ast Buffer Bytes Format Lang Reqcomm Section Tyenv Value
