lib/core/profile.mli: Ast Boundary Costmodel Interp Lang Opcount Reqcomm
