lib/core/costmodel.mli: Format
