lib/core/bgraph.mli: Ast Format Lang Varset
