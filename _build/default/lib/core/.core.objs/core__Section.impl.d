lib/core/section.ml: Fmt Printf String
