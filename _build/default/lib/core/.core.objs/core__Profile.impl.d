lib/core/profile.ml: Array Ast Boundary Costmodel Hashtbl Interp Lang List Objpack Opcount Packing Reqcomm Tyenv Value
