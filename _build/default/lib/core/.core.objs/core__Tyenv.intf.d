lib/core/tyenv.mli: Ast Boundary Lang
