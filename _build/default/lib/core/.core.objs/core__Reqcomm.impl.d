lib/core/reqcomm.ml: Array Ast Boundary Fmt Gencons Lang List Set String Varset
