lib/core/alias.ml: Ast Lang List Map Option String
