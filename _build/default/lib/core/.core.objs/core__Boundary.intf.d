lib/core/boundary.mli: Ast Format Lang
