lib/core/costmodel.ml: Array Fmt
