(* Conservative alias information for the Gen/Cons analysis.

   Figure 2 of the paper assumes "(potentially conservative) alias
   information is available": updating Gen uses must-alias information (a
   value joins Gen only if it is definitely defined), updating Cons uses
   may-alias information (anything potentially read joins Cons).

   PipeLang aliases arise from reference assignments between object or
   collection variables ([P q = t;], [q = r;]) — fields and array
   elements of class type can also hold references, which we fold into
   one conservative equivalence.  This module computes, per code segment,
   the may-alias classes of base variables by unioning every pair that
   appears in a reference assignment anywhere in the segment (flow
   insensitive, hence sound for may-information).  A variable is
   must-unaliased when its class is a singleton. *)

open Lang
module SM = Map.Make (String)

type t = {
  (* union-find parent map over variable names *)
  mutable parent : string SM.t;
  (* variables that escaped into a structure (array/list element or
     object field of class type): conservatively alias each other *)
  mutable escaped : bool SM.t;
}

let create () = { parent = SM.empty; escaped = SM.empty }

let rec find t v =
  match SM.find_opt v t.parent with
  | None | Some "" -> v
  | Some p when p = v -> v
  | Some p ->
      let r = find t p in
      t.parent <- SM.add v r t.parent;
      r

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then t.parent <- SM.add ra rb t.parent

let mark_escaped t v = t.escaped <- SM.add (find t v) true t.escaped

(* Do [a] and [b] possibly refer to the same object? *)
let may_alias t a b =
  if a = b then true
  else begin
    let ra = find t a and rb = find t b in
    ra = rb
    || (SM.mem ra t.escaped && SM.mem rb t.escaped)
  end

(* Is [v] definitely the only name for its object within the segment?
   True when nothing was ever unioned with it and it never escaped. *)
let unaliased t v =
  let r = find t v in
  (not (SM.mem r t.escaped))
  && SM.for_all (fun v' p -> v' = v || (p <> r && find t v' <> r)) t.parent
  && not (SM.mem v t.parent && find t v <> v)

(* --- collection over a statement list ---------------------------------- *)

(* Is this expression a bare variable of reference kind?  The caller
   supplies [is_ref] (classes, lists and arrays are references). *)
let rec scan_expr t ~is_ref (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Evar _ | Ast.Eint _ | Ast.Efloat _ | Ast.Ebool _ | Ast.Estring _
  | Ast.Enull | Ast.Eruntime_define _ | Ast.Enew_list _ ->
      ()
  | Ast.Efield (o, _) -> scan_expr t ~is_ref o
  | Ast.Eindex (a, i) ->
      scan_expr t ~is_ref a;
      scan_expr t ~is_ref i
  | Ast.Ebinop (_, a, b) ->
      scan_expr t ~is_ref a;
      scan_expr t ~is_ref b
  | Ast.Eunop (_, a) -> scan_expr t ~is_ref a
  | Ast.Ecall (_, args) ->
      (* the interprocedural Gen/Cons pass renames formals to the actual
         bases, so calls introduce no new names here *)
      List.iter (scan_expr t ~is_ref) args
  | Ast.Emethod (o, _, args) -> (
      scan_expr t ~is_ref o;
      List.iter (scan_expr t ~is_ref) args;
      (* list.add(x) stores a reference to x in the collection *)
      match (o.Ast.e, args) with
      | Ast.Evar _, [ { Ast.e = Ast.Evar v; _ } ] when is_ref v ->
          mark_escaped t v
      | _ -> ())
  | Ast.Enew (_, args) -> List.iter (scan_expr t ~is_ref) args
  | Ast.Enew_array (_, n) -> scan_expr t ~is_ref n
  | Ast.Erange (a, b) ->
      scan_expr t ~is_ref a;
      scan_expr t ~is_ref b

let rec scan_stmt t ~is_ref (st : Ast.stmt) =
  match st.Ast.s with
  | Ast.Sdecl (_, name, Some { Ast.e = Ast.Evar src; _ }) when is_ref src ->
      (* [P q = t;] — a new name for t's object *)
      union t name src
  | Ast.Sdecl (_, _, init) ->
      Option.iter (scan_expr t ~is_ref) init
  | Ast.Sassign (Ast.Lvar dst, { Ast.e = Ast.Evar src; _ })
    when is_ref src || is_ref dst ->
      union t dst src
  | Ast.Sassign (l, e) ->
      (* storing a reference into a field or element lets it escape *)
      (match (l, e.Ast.e) with
      | (Ast.Lfield _ | Ast.Lindex _), Ast.Evar v when is_ref v ->
          mark_escaped t v
      | _ -> ());
      scan_expr t ~is_ref e
  | Ast.Supdate (_, _, e) -> scan_expr t ~is_ref e
  | Ast.Sif (c, th, el) ->
      scan_expr t ~is_ref c;
      List.iter (scan_stmt t ~is_ref) th;
      List.iter (scan_stmt t ~is_ref) el
  | Ast.Sfor (i, c, s, body) ->
      scan_stmt t ~is_ref i;
      scan_expr t ~is_ref c;
      scan_stmt t ~is_ref s;
      List.iter (scan_stmt t ~is_ref) body
  | Ast.Swhile (c, body) ->
      scan_expr t ~is_ref c;
      List.iter (scan_stmt t ~is_ref) body
  | Ast.Sforeach { fe_coll; fe_where; fe_body; _ } ->
      scan_expr t ~is_ref fe_coll;
      Option.iter (scan_expr t ~is_ref) fe_where;
      List.iter (scan_stmt t ~is_ref) fe_body
  | Ast.Sexpr e -> scan_expr t ~is_ref e
  | Ast.Sreturn (Some e) -> scan_expr t ~is_ref e
  | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue -> ()
  | Ast.Sblock body -> List.iter (scan_stmt t ~is_ref) body

(* Alias information for one code segment.  [is_ref v] should say whether
   [v] names a reference (class, list or array typed) variable. *)
let of_stmts ~is_ref (stmts : Ast.stmt list) : t =
  let t = create () in
  List.iter (scan_stmt t ~is_ref) stmts;
  t
