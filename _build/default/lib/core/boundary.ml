(* Candidate filter boundary selection and loop fission (§4.1).

   The compiler considers three kinds of candidate filter boundaries:
   start/end of a foreach loop, a conditional statement, and start/end of
   a function call.  Any non-foreach loop must live entirely inside one
   filter.  If candidate boundaries would fall inside a foreach loop, the
   loop is fissioned into consecutive foreach loops first, so that
   boundaries only separate whole top-level statements.

   The result of this phase is the list of *atomic filters* f_1 .. f_{n+1}
   (called segments here) separated by the n candidate boundaries
   b_1 .. b_n of the decomposition algorithm (§4.4).  Because conditionals
   are kept atomic, the candidate filter boundary graph is a chain; the
   general DAG interface lives in [Bgraph]. *)

open Lang

type segment = {
  seg_index : int;           (* position in f_1 .. f_{n+1} *)
  seg_stmts : Ast.stmt list; (* top-level statements of this atomic filter *)
  seg_label : string;        (* human-readable description *)
}

let pp_segment ppf s =
  Fmt.pf ppf "f%d(%s)" (s.seg_index + 1) s.seg_label

(* ------------------------------------------------------------------ *)
(* Base-variable def/use, used to decide fission legality.              *)
(* ------------------------------------------------------------------ *)

module S = Set.Make (String)

let rec expr_uses (e : Ast.expr) acc =
  match e.Ast.e with
  | Ast.Eint _ | Ast.Efloat _ | Ast.Ebool _ | Ast.Estring _ | Ast.Enull
  | Ast.Eruntime_define _ ->
      acc
  | Ast.Evar v -> S.add v acc
  | Ast.Efield (o, _) -> expr_uses o acc
  | Ast.Eindex (a, i) -> expr_uses a (expr_uses i acc)
  | Ast.Ebinop (_, a, b) -> expr_uses a (expr_uses b acc)
  | Ast.Eunop (_, a) -> expr_uses a acc
  | Ast.Ecall (_, args) -> List.fold_left (fun acc a -> expr_uses a acc) acc args
  | Ast.Emethod (o, _, args) ->
      List.fold_left (fun acc a -> expr_uses a acc) (expr_uses o acc) args
  | Ast.Enew (_, args) -> List.fold_left (fun acc a -> expr_uses a acc) acc args
  | Ast.Enew_array (_, n) -> expr_uses n acc
  | Ast.Enew_list _ -> acc
  | Ast.Erange (lo, hi) -> expr_uses lo (expr_uses hi acc)

let rec lvalue_uses (l : Ast.lvalue) acc =
  (* indices and intermediate receivers of an lvalue are read *)
  match l with
  | Ast.Lvar _ -> acc
  | Ast.Lfield (l, _) -> lvalue_uses_full l acc
  | Ast.Lindex (l, i) -> lvalue_uses_full l (expr_uses i acc)

and lvalue_uses_full l acc =
  match l with
  | Ast.Lvar v -> S.add v acc
  | Ast.Lfield (l, _) -> lvalue_uses_full l acc
  | Ast.Lindex (l, i) -> lvalue_uses_full l (expr_uses i acc)

(* uses, declared variables, and written base variables of a statement *)
let rec stmt_def_use (st : Ast.stmt) =
  match st.Ast.s with
  | Ast.Sdecl (_, name, init) ->
      let uses =
        match init with None -> S.empty | Some e -> expr_uses e S.empty
      in
      (uses, S.singleton name, S.empty)
  | Ast.Sassign (l, e) ->
      let uses = expr_uses e (lvalue_uses l S.empty) in
      let uses =
        (* writing through a field or index also reads the base object *)
        match l with Ast.Lvar _ -> uses | _ -> S.add (Ast.lvalue_base l) uses
      in
      (uses, S.empty, S.singleton (Ast.lvalue_base l))
  | Ast.Supdate (l, _, e) ->
      let base = Ast.lvalue_base l in
      let uses = S.add base (expr_uses e (lvalue_uses l S.empty)) in
      (uses, S.empty, S.singleton base)
  | Ast.Sif (c, th, el) ->
      let u0 = expr_uses c S.empty in
      let u1, _, w1 = stmts_def_use th in
      let u2, _, w2 = stmts_def_use el in
      (S.union u0 (S.union u1 u2), S.empty, S.union w1 w2)
  | Ast.Sfor (init, cond, step, body) ->
      let u0, d0, w0 = stmt_def_use init in
      let u1 = expr_uses cond S.empty in
      let u2, _, w2 = stmt_def_use step in
      let u3, _, w3 = stmts_def_use body in
      let inner = S.union u1 (S.union u2 u3) in
      ( S.union u0 (S.diff inner d0),
        S.empty,
        S.diff (S.union w0 (S.union w2 w3)) d0 )
  | Ast.Swhile (c, body) ->
      let u0 = expr_uses c S.empty in
      let u1, _, w1 = stmts_def_use body in
      (S.union u0 u1, S.empty, w1)
  | Ast.Sforeach { fe_var; fe_coll; fe_where; fe_body } ->
      let u0 = expr_uses fe_coll S.empty in
      let u0 =
        match fe_where with None -> u0 | Some w -> expr_uses w u0
      in
      let u1, _, w1 = stmts_def_use fe_body in
      ( S.union u0 (S.remove fe_var u1),
        S.empty,
        S.remove fe_var w1 )
  | Ast.Sexpr e -> (expr_uses e S.empty, S.empty, S.empty)
  | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue -> (S.empty, S.empty, S.empty)
  | Ast.Sreturn (Some e) -> (expr_uses e S.empty, S.empty, S.empty)
  | Ast.Sblock body -> stmts_def_use body

and stmts_def_use stmts =
  (* sequential composition: uses not satisfied by earlier decls *)
  List.fold_left
    (fun (u, d, w) st ->
      let u', d', w' = stmt_def_use st in
      (S.union u (S.diff u' d), S.union d d', S.union w (S.diff w' d)))
    (S.empty, S.empty, S.empty) stmts

(* Method calls may mutate their receiver wherever they appear — as a
   statement, in a declaration's initializer, or nested inside another
   expression.  Collect every receiver's base variables. *)
let rec expr_receivers (e : Ast.expr) acc =
  match e.Ast.e with
  | Ast.Emethod (recv, _, args) ->
      let acc = expr_uses recv acc in
      List.fold_left (fun acc a -> expr_receivers a acc) acc args
  | Ast.Efield (o, _) -> expr_receivers o acc
  | Ast.Eindex (a, i) -> expr_receivers a (expr_receivers i acc)
  | Ast.Ebinop (_, a, b) -> expr_receivers a (expr_receivers b acc)
  | Ast.Eunop (_, a) -> expr_receivers a acc
  | Ast.Ecall (_, args) ->
      (* a callee may mutate reference arguments *)
      List.fold_left
        (fun acc (a : Ast.expr) ->
          match a.Ast.e with
          | Ast.Evar v -> S.add v (expr_receivers a acc)
          | _ -> expr_receivers a acc)
        acc args
  | Ast.Enew (_, args) ->
      List.fold_left (fun acc a -> expr_receivers a acc) acc args
  | Ast.Enew_array (_, n) -> expr_receivers n acc
  | Ast.Erange (a, b) -> expr_receivers a (expr_receivers b acc)
  | Ast.Eint _ | Ast.Efloat _ | Ast.Ebool _ | Ast.Estring _ | Ast.Enull
  | Ast.Evar _ | Ast.Enew_list _ | Ast.Eruntime_define _ ->
      acc

let rec stmt_writes_receiver (st : Ast.stmt) =
  match st.Ast.s with
  | Ast.Sdecl (_, _, Some e)
  | Ast.Sassign (_, e)
  | Ast.Supdate (_, _, e)
  | Ast.Sexpr e
  | Ast.Sreturn (Some e) ->
      expr_receivers e S.empty
  | Ast.Sif (c, th, el) ->
      List.fold_left
        (fun acc st -> S.union acc (stmt_writes_receiver st))
        (expr_receivers c S.empty)
        (th @ el)
  | Ast.Sfor (i, c, stp, body) ->
      List.fold_left
        (fun acc st -> S.union acc (stmt_writes_receiver st))
        (expr_receivers c S.empty)
        (i :: stp :: body)
  | Ast.Swhile (c, body) ->
      List.fold_left
        (fun acc st -> S.union acc (stmt_writes_receiver st))
        (expr_receivers c S.empty)
        body
  | Ast.Sforeach { fe_coll; fe_where; fe_body; _ } ->
      let acc = expr_receivers fe_coll S.empty in
      let acc =
        match fe_where with Some w -> expr_receivers w acc | None -> acc
      in
      List.fold_left
        (fun acc st -> S.union acc (stmt_writes_receiver st))
        acc fe_body
  | Ast.Sblock body ->
      List.fold_left
        (fun acc st -> S.union acc (stmt_writes_receiver st))
        S.empty body
  | Ast.Sdecl (_, _, None) | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue ->
      S.empty

(* ------------------------------------------------------------------ *)
(* Loop fission                                                        *)
(* ------------------------------------------------------------------ *)

(* Split the body of a top-level foreach at every legal point.  A split
   between body statements i-1 and i is legal iff
   - no variable declared before the split is used at or after it (we do
     not promote scalar temporaries to per-element fields), and
   - no outer variable written before the split (including method-call
     receivers) is read after it within the same original loop body
     (cross-piece flow through outer state would reorder element-wise
     updates across the whole collection). *)
let foreach_split_points (fe : Ast.foreach) =
  let stmts = Array.of_list fe.Ast.fe_body in
  let n = Array.length stmts in
  let infos =
    Array.map
      (fun st ->
        let u, d, w = stmt_def_use st in
        (u, d, S.union w (stmt_writes_receiver st)))
      stmts
  in
  let points = ref [] in
  for i = 1 to n - 1 do
    let decls_before = ref S.empty in
    let writes_before = ref S.empty in
    for j = 0 to i - 1 do
      let _, d, w = infos.(j) in
      decls_before := S.union !decls_before d;
      writes_before := S.union !writes_before (S.diff w d)
    done;
    let uses_after = ref S.empty in
    for j = i to n - 1 do
      let u, _, _ = infos.(j) in
      uses_after := S.union !uses_after u
    done;
    let crossing_locals = S.inter !decls_before !uses_after in
    let outer_flow =
      S.inter (S.remove fe.Ast.fe_var !writes_before) !uses_after
    in
    if S.is_empty crossing_locals && S.is_empty outer_flow then
      points := i :: !points
  done;
  List.rev !points

(* Fission one foreach into consecutive foreach loops at the given split
   points (ascending positions into its body). *)
let fission_foreach loc (fe : Ast.foreach) points =
  let stmts = Array.of_list fe.Ast.fe_body in
  let pieces =
    let rec cut start = function
      | [] -> [ Array.to_list (Array.sub stmts start (Array.length stmts - start)) ]
      | p :: rest -> Array.to_list (Array.sub stmts start (p - start)) :: cut p rest
    in
    cut 0 points
  in
  List.map
    (fun body ->
      Ast.mk_stmt ~loc
        (Ast.Sforeach { fe with Ast.fe_body = body }))
    pieces

(* Fission every top-level foreach of the pipelined body. *)
let fission_body (body : Ast.stmt list) : Ast.stmt list =
  List.concat_map
    (fun st ->
      match st.Ast.s with
      | Ast.Sforeach fe -> (
          match foreach_split_points fe with
          | [] -> [ st ]
          | points -> fission_foreach st.Ast.sloc fe points)
      | _ -> [ st ])
    body

(* ------------------------------------------------------------------ *)
(* Segmentation into atomic filters                                     *)
(* ------------------------------------------------------------------ *)

let label_of_stmt (st : Ast.stmt) =
  match st.Ast.s with
  | Ast.Sforeach { fe_coll; _ } ->
      Printf.sprintf "foreach %s" (Pretty.expr_to_string fe_coll)
  | Ast.Sif (c, _, _) -> Printf.sprintf "if %s" (Pretty.expr_to_string c)
  | Ast.Sexpr { e = Ast.Emethod (_, m, _); _ } -> Printf.sprintf "call %s" m
  | Ast.Sexpr { e = Ast.Ecall (f, _); _ } -> Printf.sprintf "call %s" f
  | Ast.Sfor _ -> "for"
  | Ast.Swhile _ -> "while"
  | _ -> "stmts"

(* Is this statement one at which the paper allows a boundary (a
   boundary-worthy segment head)?  foreach loops, conditionals, loops
   (which must be wholly contained, hence atomic), call statements, and
   declarations/assignments whose right-hand side is a (non-builtin)
   function call — the "start and end of a function call" candidates. *)
let builtin_names =
  S.of_list (List.map (fun e -> e.Typecheck.ex_name) Typecheck.builtin_externs)

let is_call_rhs (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Ecall (f, _) -> not (S.mem f builtin_names)
  | Ast.Emethod _ -> true
  | _ -> false

let boundary_worthy (st : Ast.stmt) =
  match st.Ast.s with
  | Ast.Sforeach _ | Ast.Sif _ | Ast.Sfor _ | Ast.Swhile _ -> true
  | Ast.Sexpr { e = Ast.Emethod _; _ } -> true
  | Ast.Sexpr { e = Ast.Ecall (f, _); _ } -> not (S.mem f builtin_names)
  | Ast.Sdecl (_, _, Some e) | Ast.Sassign (_, e) -> is_call_rhs e
  | _ -> false

(* Partition the (already fissioned) top-level statements into segments.
   Plain statements (declarations, scalar assignments) carry no candidate
   boundary and are glued onto the following boundary-worthy statement;
   trailing plain statements form a final segment. *)
let segments_of_stmts (body : Ast.stmt list) : segment list =
  let segs = ref [] in
  let pending = ref [] in
  let push stmts label =
    segs := (stmts, label) :: !segs
  in
  List.iter
    (fun st ->
      if boundary_worthy st then begin
        push (List.rev (st :: !pending)) (label_of_stmt st);
        pending := []
      end
      else pending := st :: !pending)
    body;
  if !pending <> [] then push (List.rev !pending) "tail";
  List.rev !segs
  |> List.mapi (fun i (stmts, label) ->
         { seg_index = i; seg_stmts = stmts; seg_label = label })

(* Full phase: fission then segment. *)
let segments_of_body (body : Ast.stmt list) : segment list =
  segments_of_stmts (fission_body body)

(* The candidate boundaries b_1 .. b_n sit between consecutive segments:
   boundary i separates segment i-1 from segment i (0-based segments). *)
let boundary_count segments = max 0 (List.length segments - 1)
