(** Required-communication analysis (§4.2).

    Given the atomic filters f_1 .. f_{n+1}, computes the set of values
    that must cross each candidate boundary in one backward pass:

    {v ReqComm(end) = {};  ReqComm(b_i) = (ReqComm(b_{i+1}) - Gen(f_{i+1})) + Cons(f_{i+1}) v}

    As the paper observes, the computed set at a boundary remains correct
    when intermediate boundaries are not selected, so the same sets serve
    every decomposition the dynamic program considers.  Reduction globals
    (persistent filter state, §2.2) and plain globals (run-time
    configuration) are excluded from per-packet communication. *)

open Lang

module S : sig
  include module type of Set.Make (String)
end
with type t = Set.Make(String).t

(** Per-segment analysis results. *)
type seg_info = {
  si_seg : Boundary.segment;
  si_gen : Varset.t;
  si_cons : Varset.t;
  si_externs : S.t;      (** extern functions the segment calls *)
  si_reduc_state : S.t;  (** reduction globals it touches *)
  si_config : S.t;       (** non-reduction globals it reads *)
}

type t = {
  prog : Ast.program;
  segs : seg_info array;
  reqcomm : Varset.t array;
      (** [reqcomm.(i)] enters segment [i]; [reqcomm.(n+1)] is empty *)
}

val item_base : Varset.item -> string

(** Names of globals whose class implements Reducinterface. *)
val reduction_globals : Ast.program -> S.t

val plain_globals : Ast.program -> S.t

val analyze : Ast.program -> Boundary.segment list -> t

(** Values crossing the boundary that enters segment [i]. *)
val reqcomm_into : t -> int -> Varset.t

val segment_count : t -> int

(** First segment at or after [i] that consumes [item] before any
    redefinition — drives the instance-wise/field-wise grouping (§5). *)
val first_consumer : t -> int -> Varset.item -> int option

(** Indices of segments calling any extern in [names] (for pinning data
    sources to C_1 and sinks to C_m). *)
val segments_calling : t -> S.t -> int list

val pp : Format.formatter -> t -> unit
