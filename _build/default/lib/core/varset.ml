(* The value-set domain of the communication analysis (§4.2).

   The Gen/Cons/ReqComm sets of the paper contain "values": scalar
   variables, fields of objects iterated over in foreach loops (tracked
   per collection, since what actually crosses a filter boundary is one
   field instance per collection element), whole collections, and
   rectilinear array sections. *)

type item =
  | Var of string                   (* scalar or whole-object variable *)
  | Coll of string                  (* a collection's structure (its
                                       element count and identity) *)
  | ElemField of string * string    (* field [f] of the elements of
                                       collection [c] *)
  | Arr of string * Section.t       (* rectilinear section of an array *)

let item_to_string = function
  | Var v -> v
  | Coll c -> c ^ "#"
  | ElemField (c, f) -> c ^ "." ^ f
  | Arr (a, s) -> a ^ Section.to_string s

let pp_item ppf i = Fmt.string ppf (item_to_string i)

(* A set of items.  Array items are keyed by array name and their sections
   merged; everything else is keyed structurally. *)
module Key = struct
  type t = K_var of string | K_coll of string | K_field of string * string | K_arr of string

  let compare = compare
end

module M = Map.Make (Key)

type t = item M.t

let key_of = function
  | Var v -> Key.K_var v
  | Coll c -> Key.K_coll c
  | ElemField (c, f) -> Key.K_field (c, f)
  | Arr (a, _) -> Key.K_arr a

let empty : t = M.empty
let is_empty = M.is_empty
let cardinal = M.cardinal
let items (t : t) = M.bindings t |> List.map snd

let mem item (t : t) =
  match M.find_opt (key_of item) t with
  | None -> false
  | Some (Arr (_, s)) -> (
      match item with
      | Arr (_, s') -> Section.covers ~outer:s ~inner:s'
      | _ -> false)
  | Some _ -> true

let add item (t : t) =
  let key = key_of item in
  match (item, M.find_opt key t) with
  | Arr (a, s), Some (Arr (_, s0)) -> M.add key (Arr (a, Section.union s0 s)) t
  | _ -> M.add key item t

let remove_exact item (t : t) = M.remove (key_of item) t

(* Remove [item] as must-information: for arrays, only the provably
   covered part disappears. *)
let remove item (t : t) =
  let key = key_of item in
  match (item, M.find_opt key t) with
  | _, None -> t
  | Arr (_, gen_s), Some (Arr (a, have_s)) -> (
      match Section.subtract have_s gen_s with
      | None -> M.remove key t
      | Some s -> M.add key (Arr (a, s)) t)
  | _, Some _ -> M.remove key t

let union (a : t) (b : t) = M.fold (fun _ item acc -> add item acc) b a

(* [diff a b]: a - b with must-semantics on removal. *)
let diff (a : t) (b : t) = M.fold (fun _ item acc -> remove item acc) b a

let fold f (t : t) acc = M.fold (fun _ item acc -> f item acc) t acc
let iter f (t : t) = M.iter (fun _ item -> f item) t
let filter p (t : t) = M.filter (fun _ item -> p item) t
let of_list l = List.fold_left (fun acc i -> add i acc) empty l

let equal (a : t) (b : t) =
  M.equal
    (fun x y ->
      match (x, y) with
      | Arr (_, s1), Arr (_, s2) -> Section.equal s1 s2
      | _ -> x = y)
    a b

(* All items referring to collection [c] (structure or element fields). *)
let about_collection c (t : t) =
  filter
    (function
      | Coll c' | ElemField (c', _) -> String.equal c c'
      | _ -> false)
    t

(* Rename the base variable of every item, used when mapping formals to
   actuals in the interprocedural analysis. *)
let rename f (t : t) =
  fold
    (fun item acc ->
      let item' =
        match item with
        | Var v -> Var (f v)
        | Coll c -> Coll (f c)
        | ElemField (c, fl) -> ElemField (f c, fl)
        | Arr (a, s) -> Arr (f a, s)
      in
      add item' acc)
    t empty

let to_string (t : t) =
  items t |> List.map item_to_string |> String.concat ", "
  |> Printf.sprintf "{%s}"

let pp ppf t = Fmt.string ppf (to_string t)
