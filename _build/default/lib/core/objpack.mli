(** Whole-object serialization for reduction state.

    Per-packet communication is layout-optimized by {!Packing}; reduction
    partials travel once per copy at finalize time and are serialized
    generically (fields in declaration order, recursing into arrays,
    lists and nested objects). *)

open Lang

(** Pack named globals as [(name, declared type, value)] triples. *)
val pack_globals :
  Ast.program -> (string * Ast.ty * Value.t) list -> Bytes.t

(** Inverse of {!pack_globals}; [types] maps names to declared types.
    @raise Value.Runtime_error on an unknown global name. *)
val unpack_globals :
  Ast.program -> (string * Ast.ty) list -> Bytes.t -> (string * Value.t) list

val packed_size : Ast.program -> (string * Ast.ty * Value.t) list -> int
