(* Rectilinear sections with symbolic bounds (§4.2 of the paper).

   When the Gen/Cons analysis encounters array accesses indexed by a
   function of a loop index, it replaces the individual accesses by a
   rectilinear section derived from the loop bounds.  Bounds may be known
   only symbolically (e.g. a variable holding the array length), so
   sections carry symbolic bounds and all set operations are approximate
   in a direction that keeps the analysis sound:

   - [union] may over-approximate (used when growing Cons/Gen as
     may-information),
   - [subtract] only removes a range when the subtrahend provably covers
     it (removal needs must-information; keeping too much is safe). *)

type bound =
  | Bconst of int
  | Bsym of string            (* symbolic value of a scalar variable *)
  | Bsym_off of string * int  (* symbol + constant offset *)

type t =
  | Whole                     (* the entire array *)
  | Range of bound * bound    (* [lo, hi) *)

let bound_to_string = function
  | Bconst n -> string_of_int n
  | Bsym s -> s
  | Bsym_off (s, n) when n >= 0 -> Printf.sprintf "%s+%d" s n
  | Bsym_off (s, n) -> Printf.sprintf "%s%d" s n

let to_string = function
  | Whole -> "[*]"
  | Range (lo, hi) -> Printf.sprintf "[%s : %s]" (bound_to_string lo) (bound_to_string hi)

let pp ppf t = Fmt.string ppf (to_string t)

let bound_equal a b =
  match (a, b) with
  | Bconst x, Bconst y -> x = y
  | Bsym x, Bsym y -> String.equal x y
  | Bsym_off (x, i), Bsym_off (y, j) -> String.equal x y && i = j
  | Bsym x, Bsym_off (y, 0) | Bsym_off (y, 0), Bsym x -> String.equal x y
  | _ -> false

let equal a b =
  match (a, b) with
  | Whole, Whole -> true
  | Range (a1, b1), Range (a2, b2) -> bound_equal a1 a2 && bound_equal b1 b2
  | _ -> false

(* Three-valued comparison of bounds: [Some c] when the order is provable. *)
let bound_le a b =
  match (a, b) with
  | Bconst x, Bconst y -> Some (x <= y)
  | Bsym x, Bsym y when String.equal x y -> Some true
  | Bsym_off (x, i), Bsym_off (y, j) when String.equal x y -> Some (i <= j)
  | Bsym x, Bsym_off (y, j) when String.equal x y -> Some (0 <= j)
  | Bsym_off (x, i), Bsym y when String.equal x y -> Some (i <= 0)
  | _ -> None

(* Does [outer] provably contain [inner]? *)
let covers ~outer ~inner =
  match (outer, inner) with
  | Whole, _ -> true
  | _, Whole -> false
  | Range (lo1, hi1), Range (lo2, hi2) -> (
      match (bound_le lo1 lo2, bound_le hi2 hi1) with
      | Some true, Some true -> true
      | _ -> false)

(* Union, over-approximating when bounds are not comparable.  The result
   always contains both arguments. *)
let union a b =
  if covers ~outer:a ~inner:b then a
  else if covers ~outer:b ~inner:a then b
  else
    match (a, b) with
    | Whole, _ | _, Whole -> Whole
    | Range (lo1, hi1), Range (lo2, hi2) -> (
        let lo =
          match (bound_le lo1 lo2, bound_le lo2 lo1) with
          | Some true, _ -> Some lo1
          | _, Some true -> Some lo2
          | _ -> None
        in
        let hi =
          match (bound_le hi1 hi2, bound_le hi2 hi1) with
          | Some true, _ -> Some hi2
          | _, Some true -> Some hi1
          | _ -> None
        in
        match (lo, hi) with
        | Some lo, Some hi -> Range (lo, hi)
        | _ -> Whole)

(* [subtract a b]: the part of [a] not covered by [b], under-approximating
   removal: returns [None] (nothing left) only when [b] provably covers
   [a]; otherwise returns [a] unchanged. *)
let subtract a b = if covers ~outer:b ~inner:a then None else Some a

(* Sections whose intersection is provably empty. *)
let disjoint a b =
  match (a, b) with
  | Whole, _ | _, Whole -> false
  | Range (lo1, hi1), Range (lo2, hi2) -> (
      match (bound_le hi1 lo2, bound_le hi2 lo1) with
      | Some true, _ | _, Some true -> true
      | _ -> false)
