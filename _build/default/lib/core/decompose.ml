(* Filter decomposition (§4.4, Figure 3).

   Given n+1 atomic filters and m computing units, choose where to insert
   m-1 filter boundaries.  The dynamic program fills T[i, j] — the minimum
   cost of completing filters f_1 .. f_i with the results of f_i residing
   on unit C_j — in O(nm) time:

     T[i, j] = min { T[i-1, j] + Cost_comp(P(C_j), Task(f_i)),
                     T[i, j-1] + Cost_comm(B(L_{j-1}), Vol(f_i)) }

   The additive objective is the single-packet latency; the steady-state
   bottleneck cost (§4.3) is evaluated on the resulting decomposition.
   A brute-force oracle (exponential enumeration of boundary placements)
   is provided for testing and for the ablation benchmark.

   Placement constraints: segments calling a data-source extern must run
   on C_1 (that is where the repository lives) and segments calling a
   sink extern must run on C_m (where results are viewed). *)

type constraints = {
  pin_first : int list; (* segment indices (0-based) pinned to unit 1 *)
  pin_last : int list;  (* segment indices pinned to unit m *)
}

let no_constraints = { pin_first = []; pin_last = [] }

let allowed cons ~m ~seg ~unit =
  (not (List.mem seg cons.pin_first && unit <> 1))
  && not (List.mem seg cons.pin_last && unit <> m)

type result = {
  assignment : Costmodel.assignment; (* unit of each segment, 1-based *)
  latency : float;                   (* additive DP objective *)
  total : float;                     (* steady-state total time (§4.3) *)
  table : float array array;         (* the DP table, for inspection *)
}

let infinity_cost = infinity

(* Dynamic programming decomposition. *)
let dp ?(cons = no_constraints) (p : Costmodel.pipeline)
    (profile : Costmodel.profile) : result =
  let m = Costmodel.width_of p in
  let n1 = Costmodel.segment_count profile in
  if n1 = 0 then invalid_arg "dp: no segments";
  (* t.(i).(j): filters 0..i done, results of filter i on unit j (1-based
     j, stored at index j-1).  choice.(i).(j) = `Comp -> placed f_i on C_j
     after T[i-1][j]; `Comm -> moved from C_{j-1}. *)
  let t = Array.make_matrix n1 m infinity_cost in
  let choice = Array.make_matrix n1 m `None in
  for i = 0 to n1 - 1 do
    for j = 1 to m do
      let comp =
        if not (allowed cons ~m ~seg:i ~unit:j) then infinity_cost
        else
          let prev = if i = 0 then 0.0 else t.(i - 1).(j - 1) in
          prev +. Costmodel.cost_comp p.Costmodel.units.(j - 1) profile.Costmodel.task.(i)
      in
      let comm =
        if j = 1 then infinity_cost
        else
          t.(i).(j - 2)
          +. Costmodel.cost_comm p.Costmodel.links.(j - 2)
               profile.Costmodel.vol_out.(i)
      in
      if comp <= comm then begin
        t.(i).(j - 1) <- comp;
        choice.(i).(j - 1) <- `Comp
      end
      else begin
        t.(i).(j - 1) <- comm;
        choice.(i).(j - 1) <- `Comm
      end
    done
  done;
  (* backtrack from T[n][m] *)
  let assignment = Array.make n1 m in
  let rec back i j =
    if i >= 0 then
      match choice.(i).(j - 1) with
      | `Comp ->
          assignment.(i) <- j;
          back (i - 1) j
      | `Comm -> back i (j - 1)
      | `None -> invalid_arg "dp: unreachable state during backtracking"
  in
  if t.(n1 - 1).(m - 1) = infinity_cost then
    invalid_arg "dp: constraints made the problem infeasible";
  back (n1 - 1) m;
  {
    assignment;
    latency = t.(n1 - 1).(m - 1);
    total = Costmodel.total_time p profile assignment;
    table = t;
  }

(* The space-optimized variant of Figure 3's note: O(m) space, same
   result value (no backtracking information retained). *)
let dp_value_rowwise ?(cons = no_constraints) (p : Costmodel.pipeline)
    (profile : Costmodel.profile) : float =
  let m = Costmodel.width_of p in
  let n1 = Costmodel.segment_count profile in
  let row = Array.make m infinity_cost in
  for i = 0 to n1 - 1 do
    for j = 1 to m do
      let comp =
        if not (allowed cons ~m ~seg:i ~unit:j) then infinity_cost
        else
          let prev = if i = 0 then 0.0 else row.(j - 1) in
          prev +. Costmodel.cost_comp p.Costmodel.units.(j - 1) profile.Costmodel.task.(i)
      in
      (* row.(j-2) already holds T[i][j-1] at this point of the sweep *)
      let comm =
        if j = 1 then infinity_cost
        else
          row.(j - 2)
          +. Costmodel.cost_comm p.Costmodel.links.(j - 2)
               profile.Costmodel.vol_out.(i)
      in
      row.(j - 1) <- min comp comm
    done
  done;
  row.(m - 1)

(* Enumerate all nondecreasing assignments of n+1 segments to m units and
   return the best under [objective].  Exponential; for tests/ablations. *)
let brute_force ?(cons = no_constraints)
    ~(objective : [ `Latency | `Total ]) (p : Costmodel.pipeline)
    (profile : Costmodel.profile) : result =
  let m = Costmodel.width_of p in
  let n1 = Costmodel.segment_count profile in
  let best = ref None in
  let a = Array.make n1 1 in
  let cost_of a =
    match objective with
    | `Latency -> Costmodel.latency_time p profile a
    | `Total -> Costmodel.total_time p profile a
  in
  let feasible a =
    let ok = ref true in
    Array.iteri
      (fun i u -> if not (allowed cons ~m ~seg:i ~unit:u) then ok := false)
      a;
    !ok
  in
  let rec go i lo =
    if i = n1 then begin
      if feasible a then begin
        let c = cost_of a in
        match !best with
        | Some (c0, _) when c0 <= c -> ()
        | _ -> best := Some (c, Array.copy a)
      end
    end
    else
      for u = lo to m do
        a.(i) <- u;
        go (i + 1) u
      done
  in
  go 0 1;
  match !best with
  | None -> invalid_arg "brute_force: infeasible"
  | Some (_, assignment) ->
      {
        assignment;
        latency = Costmodel.latency_time p profile assignment;
        total = Costmodel.total_time p profile assignment;
        table = [||];
      }

(* --------------------------------------------------------------- *)
(* Steady-state (bottleneck) decomposition                          *)
(* --------------------------------------------------------------- *)

(* The Figure 3 dynamic program minimizes the additive single-packet
   latency; under uniform unit powers it therefore prefers to co-locate
   all computation (no communication), which ignores pipeline overlap.
   The paper's cost model (§4.3), however, is the steady-state formula
   (N-1) * T(bottleneck) + fill.  [bottleneck] minimizes that objective
   exactly: stage times take finitely many values (contiguous segment
   ranges per unit, one volume per boundary), so we enumerate candidate
   bottleneck bounds B and, for each, run a cut-position DP that finds
   the minimum fill among assignments whose every stage time is <= B. *)

let prefix_sums task =
  let n = Array.length task in
  let p = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    p.(i + 1) <- p.(i) +. task.(i)
  done;
  p

(* Output volume crossing the boundary that enters segment [c] (i.e. the
   last segment before [c] produced it); 0 when nothing precedes. *)
let boundary_volume (profile : Costmodel.profile) c =
  if c = 0 then 0.0 else profile.Costmodel.vol_out.(c - 1)

let bottleneck ?(cons = no_constraints) (p : Costmodel.pipeline)
    (profile : Costmodel.profile) : result =
  let m = Costmodel.width_of p in
  let n1 = Costmodel.segment_count profile in
  let sums = prefix_sums profile.Costmodel.task in
  let unit_time u a b =
    (* segments [a, b) on unit u (1-based) *)
    (sums.(b) -. sums.(a)) /. p.Costmodel.units.(u - 1).Costmodel.power
  in
  let link_time l c =
    (* boundary entering segment c crossing link l (1-based) *)
    Costmodel.cost_comm p.Costmodel.links.(l - 1) (boundary_volume profile c)
  in
  (* candidate bottleneck values *)
  let candidates = ref [] in
  for u = 1 to m do
    for a = 0 to n1 do
      for b = a to n1 do
        candidates := unit_time u a b :: !candidates
      done
    done
  done;
  for l = 1 to m - 1 do
    for c = 0 to n1 do
      candidates := link_time l c :: !candidates
    done
  done;
  let candidates = List.sort_uniq compare !candidates in
  let range_allowed u a b =
    let ok = ref true in
    for i = a to b - 1 do
      if not (allowed cons ~m ~seg:i ~unit:u) then ok := false
    done;
    !ok
  in
  (* Min fill with every stage time <= bound; None if infeasible.
     g.(u).(c) = min fill for units 1..u hosting segments [0, c), with
     the link u->u+1 not yet charged. *)
  let solve bound =
    let eps = 1e-12 in
    let g = Array.make_matrix (m + 1) (n1 + 1) infinity in
    let choice = Array.make_matrix (m + 1) (n1 + 1) (-1) in
    g.(0).(0) <- 0.0;
    for u = 1 to m do
      for c' = 0 to n1 do
        for c = 0 to c' do
          if g.(u - 1).(c) < infinity then begin
            let ut = unit_time u c c' in
            let lt = if u = 1 then 0.0 else link_time (u - 1) c in
            if
              ut <= bound +. eps
              && lt <= bound +. eps
              && range_allowed u c c'
            then begin
              let fill = g.(u - 1).(c) +. ut +. lt in
              if fill < g.(u).(c') then begin
                g.(u).(c') <- fill;
                choice.(u).(c') <- c
              end
            end
          end
        done
      done
    done;
    if g.(m).(n1) = infinity then None
    else begin
      (* backtrack the cuts into an assignment *)
      let assignment = Array.make n1 m in
      let rec back u c' =
        if u >= 1 then begin
          let c = choice.(u).(c') in
          for i = c to c' - 1 do
            assignment.(i) <- u
          done;
          back (u - 1) c
        end
      in
      back m n1;
      Some assignment
    end
  in
  let best = ref None in
  List.iter
    (fun b ->
      match solve b with
      | None -> ()
      | Some a ->
          let total = Costmodel.total_time p profile a in
          (match !best with
          | Some (t0, _) when t0 <= total -> ()
          | _ -> best := Some (total, a)))
    candidates;
  match !best with
  | None -> invalid_arg "bottleneck: infeasible constraints"
  | Some (total, assignment) ->
      {
        assignment;
        latency = Costmodel.latency_time p profile assignment;
        total;
        table = [||];
      }

(* The paper's Default baseline: the data host only reads and forwards,
   all computation happens on the middle unit(s), and the results are
   viewed on the last unit (which receives only the merged reduction
   state, so no program segment is placed there). *)
let default_assignment ~m ~segments : Costmodel.assignment =
  let middle = min 2 m in
  Array.init segments (fun i -> if i = 0 then 1 else middle)

let pp_result ppf r =
  Fmt.pf ppf "assignment=%a latency=%.6f total=%.6f" Costmodel.pp_assignment
    r.assignment r.latency r.total
