(** Filter decomposition (§4.4).

    Chooses where to insert the m-1 filter boundaries among the n
    candidates.  Three algorithms:
    - {!dp}: the paper's Figure 3 dynamic program, O(nm) time, additive
      (single-packet latency) objective;
    - {!bottleneck}: exact minimization of the §4.3 steady-state total
      by enumerating candidate bottleneck bounds over a cut-position DP
      (the additive DP prefers co-locating everything under uniform
      powers, which forfeits pipeline overlap — see DESIGN.md);
    - {!brute_force}: exhaustive oracle for testing and ablations. *)

(** Placement constraints: data sources must run where the data lives
    (C_1), per-packet sinks where results are viewed (C_m). *)
type constraints = {
  pin_first : int list;  (** segment indices pinned to unit 1 *)
  pin_last : int list;   (** segment indices pinned to unit m *)
}

val no_constraints : constraints

val allowed : constraints -> m:int -> seg:int -> unit:int -> bool

type result = {
  assignment : Costmodel.assignment;
  latency : float;  (** additive objective of the result *)
  total : float;    (** §4.3 steady-state total of the result *)
  table : float array array;
      (** the DP table for inspection ([dp] only; empty otherwise) *)
}

(** Figure 3 dynamic program with backtracking.
    @raise Invalid_argument when constraints are infeasible. *)
val dp :
  ?cons:constraints -> Costmodel.pipeline -> Costmodel.profile -> result

(** The O(m)-space variant noted under Figure 3: same optimal value, no
    assignment recovery. *)
val dp_value_rowwise :
  ?cons:constraints -> Costmodel.pipeline -> Costmodel.profile -> float

(** Exhaustive search over all nondecreasing assignments, minimizing
    the chosen objective.  Exponential. *)
val brute_force :
  ?cons:constraints ->
  objective:[ `Latency | `Total ] ->
  Costmodel.pipeline ->
  Costmodel.profile ->
  result

(** Exact steady-state optimum (see module header). *)
val bottleneck :
  ?cons:constraints -> Costmodel.pipeline -> Costmodel.profile -> result

(** The paper's Default baseline (§6.2): read on the data host,
    everything else on the compute unit, results viewed on the last
    unit. *)
val default_assignment : m:int -> segments:int -> Costmodel.assignment

val pp_result : Format.formatter -> result -> unit
