(** One-pass Gen/Cons analysis (Figure 2 of the paper).

    For a code segment [b] between consecutive candidate boundaries,
    computes Gen(b) — values defined in [b] (must-information) — and
    Cons(b) — values used in [b] but not defined in it
    (may-information) — by a single reverse traversal.  Conditionals
    contribute Cons but never Gen; counted-loop accesses widen to
    rectilinear sections from the loop bounds; calls are analyzed
    interprocedurally and context-sensitively with formals mapped to
    actuals. *)

open Lang

(** Analysis context: class/function tables plus the kinds of the
    variables visible at segment boundaries. *)
type ctx

(** The pseudo-field naming the element value of a collection of
    primitives ([List<int>], [List<float>]). *)
val prim_field : string

(** Context whose outer variables come from the program's own pipelined
    body (globals, the packet variable, top-level declarations). *)
val create_ctx : Ast.program -> ctx

(** Context for an explicitly segmented/fissioned body. *)
val create_ctx_for_body : Ast.program -> Ast.stmt list -> ctx

(** Gen and Cons of one segment. *)
val analyze_segment : ctx -> Ast.stmt list -> Varset.t * Varset.t

(** Names of extern functions (not defined in the program, not builtin)
    called anywhere in the statements — used to pin data sources and
    sinks. *)
val externs_called :
  Ast.program -> Ast.stmt list -> Set.Make(String).t

(** May-alias classes of a statement list under this context's kinds
    (used by {!Compile} to reject decompositions whose boundaries would
    split aliased references). *)
val aliases_of : ctx -> Ast.stmt list -> Alias.t
