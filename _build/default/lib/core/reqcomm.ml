(* Required-communication analysis (§4.2).

   Given the atomic filters (segments) f_1 .. f_{n+1}, computes the set of
   values that must cross each candidate boundary:

     ReqComm(end)  = {}
     ReqComm(b_i)  = (ReqComm(b_{i+1}) - Gen(f_{i+1})) + Cons(f_{i+1})

   in a single backward pass.  As the paper observes, the computed set at
   a boundary remains correct when intermediate boundaries are not
   selected, so the same sets serve every decomposition the dynamic
   program considers.

   Two families of items are excluded from per-packet communication:
   - reduction globals (classes implementing Reducinterface): they are
     persistent filter state; each packet's contribution is merged locally
     and the merged value travels once, at finalize time;
   - other globals: run-time configuration, broadcast at startup. *)

open Lang
module S = Set.Make (String)

type seg_info = {
  si_seg : Boundary.segment;
  si_gen : Varset.t;
  si_cons : Varset.t;
  si_externs : S.t;          (* extern functions the segment calls *)
  si_reduc_state : S.t;      (* reduction globals this segment touches *)
  si_config : S.t;           (* non-reduction globals it reads *)
}

type t = {
  prog : Ast.program;
  segs : seg_info array;
  (* reqcomm.(i) = values entering segment i, i.e. crossing boundary b_i;
     reqcomm.(0) is the data the first filter receives from nowhere and is
     empty by construction apart from the packet index. *)
  reqcomm : Varset.t array;
}

let item_base = function
  | Varset.Var v -> v
  | Varset.Coll c -> c
  | Varset.ElemField (c, _) -> c
  | Varset.Arr (a, _) -> a

let reduction_globals (prog : Ast.program) =
  List.filter_map
    (fun g ->
      match g.Ast.gd_ty with
      | Ast.Tclass c when Ast.is_reduction_class prog c -> Some g.Ast.gd_name
      | _ -> None)
    prog.Ast.globals
  |> S.of_list

let plain_globals (prog : Ast.program) =
  List.filter_map
    (fun g ->
      match g.Ast.gd_ty with
      | Ast.Tclass c when Ast.is_reduction_class prog c -> None
      | _ -> Some g.Ast.gd_name)
    prog.Ast.globals
  |> S.of_list

let analyze (prog : Ast.program) (segments : Boundary.segment list) : t =
  let ctx = Gencons.create_ctx_for_body prog
      (List.concat_map (fun s -> s.Boundary.seg_stmts) segments)
  in
  let reduc = reduction_globals prog in
  let plain = plain_globals prog in
  let segs =
    segments
    |> List.map (fun (seg : Boundary.segment) ->
           let gen, cons = Gencons.analyze_segment ctx seg.Boundary.seg_stmts in
           let bases_of vs =
             Varset.fold (fun item acc -> S.add (item_base item) acc) vs S.empty
           in
           let all_bases = S.union (bases_of gen) (bases_of cons) in
           {
             si_seg = seg;
             si_gen = gen;
             si_cons = cons;
             si_externs = Gencons.externs_called prog seg.Boundary.seg_stmts;
             si_reduc_state = S.inter all_bases reduc;
             si_config = S.inter (bases_of cons) plain;
           })
    |> Array.of_list
  in
  let n1 = Array.length segs in
  let excluded item =
    let b = item_base item in
    S.mem b reduc || S.mem b plain
  in
  let reqcomm = Array.make (n1 + 1) Varset.empty in
  for i = n1 - 1 downto 0 do
    let filtered_gen = segs.(i).si_gen in
    let filtered_cons = Varset.filter (fun it -> not (excluded it)) segs.(i).si_cons in
    reqcomm.(i) <-
      Varset.union (Varset.diff reqcomm.(i + 1) filtered_gen) filtered_cons
  done;
  { prog; segs; reqcomm }

(* Values crossing boundary b_i (between segment i-1 and segment i),
   1-based like the paper; [reqcomm_into t 0] is the input of the first
   filter. *)
let reqcomm_into t i = t.reqcomm.(i)

let segment_count t = Array.length t.segs

(* The first segment that consumes each item after boundary [i]: used by
   the packing phase to choose instance-wise vs field-wise layout (§5). *)
let first_consumer t i item =
  let n = Array.length t.segs in
  let rec go j =
    if j >= n then None
    else if Varset.mem item t.segs.(j).si_cons then Some j
    else if Varset.mem item t.segs.(j).si_gen then None (* redefined first *)
    else go (j + 1)
  in
  go i

(* Segments whose extern calls appear in [names] must be pinned: data
   sources to the first computing unit, result sinks to the last. *)
let segments_calling t names =
  Array.to_list t.segs
  |> List.filter_map (fun si ->
         if S.exists (fun e -> S.mem e names) si.si_externs then
           Some si.si_seg.Boundary.seg_index
         else None)

let pp ppf t =
  Array.iteri
    (fun i si ->
      Fmt.pf ppf "boundary b%d: %a@\n" i Varset.pp t.reqcomm.(i);
      Fmt.pf ppf "  %a: gen=%a cons=%a@\n" Boundary.pp_segment si.si_seg
        Varset.pp si.si_gen Varset.pp si.si_cons)
    t.segs;
  Fmt.pf ppf "boundary b%d (end): %a@\n" (Array.length t.segs) Varset.pp
    t.reqcomm.(Array.length t.segs)
