(** Filter code generation (§5).

    Given a decomposition (segment to computing unit), builds DataCutter
    filters.  Each generated filter, per unit of work, unpacks the
    boundary's ReqComm values from the input buffer, executes its code
    segments with the instrumented interpreter, and packs the next
    boundary's ReqComm values into the output buffer.

    Reduction globals are persistent per-copy filter state; each copy
    ships its partial as an end-of-stream payload, filters sharing the
    global merge it into their own partial, others forward it, and the
    sink merges everything, so the authoritative result ends on the
    viewing node C_m. *)

open Lang
open Datacutter

type plan = {
  prog : Ast.program;
  segments : Boundary.segment array;
  rc : Reqcomm.t;
  tyenv : Tyenv.t;
  assignment : Costmodel.assignment;
  m : int;
  cuts : int array;
      (** [cuts.(u-1)]: first segment assigned to a unit >= u *)
  layouts : Packing.layout array;
      (** layout of the stream entering unit u at index u-1 (entry 0
          unused) *)
  num_packets : int;
  externs : (string * Interp.extern_fn) list;
  runtime_defs : (string * int) list;
}

val make_plan :
  ?layout_mode:Packing.mode ->
  Ast.program ->
  Boundary.segment list ->
  Reqcomm.t ->
  assignment:Costmodel.assignment ->
  m:int ->
  num_packets:int ->
  externs:(string * Interp.extern_fn) list ->
  runtime_defs:(string * int) list ->
  plan

(** Segments placed on unit [u] (1-based). *)
val segments_of_unit : plan -> int -> Boundary.segment list

(** Reduction globals held as partial state by unit [u]'s segments. *)
val reduc_updated : plan -> int -> Set.Make(String).t

(** The data-source filter for unit 1; copy [k] of [width] handles the
    packets congruent to k modulo width (declustered data nodes). *)
val make_source : plan -> width:int -> int -> Filter.source

(** An inner or sink filter for unit [u] in 2..m.  The sink (u = m) calls
    [on_result] with the merged reduction globals at finalize. *)
val make_filter :
  plan ->
  u:int ->
  ?on_result:((string * Value.t) list -> unit) ->
  int ->
  Filter.t

(** Assemble a runnable topology for the plan; [widths] gives the
    transparent copies per unit (the sink must have width 1).  Returns
    the topology and a handle yielding the sink's merged reduction
    globals after a run. *)
val build_topology :
  plan ->
  widths:int array ->
  powers:float array ->
  bandwidths:float array ->
  ?latency:float ->
  unit ->
  Topology.t * (unit -> (string * Value.t) list)
