(** The value-set domain of the communication analysis (§4.2).

    Gen/Cons/ReqComm sets contain "values": scalar variables, per-element
    fields of collections (what actually crosses a filter boundary is one
    field instance per element), whole collection structures, and
    rectilinear array sections. *)

type item =
  | Var of string                 (** scalar variable *)
  | Coll of string                (** a collection's structure *)
  | ElemField of string * string  (** field [f] of elements of [c] —
                                      also used for fields of plain
                                      object variables *)
  | Arr of string * Section.t     (** rectilinear section of an array *)

val item_to_string : item -> string
val pp_item : Format.formatter -> item -> unit

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int
val items : t -> item list
val of_list : item list -> t

(** Membership; an array section is a member when the stored section
    provably covers it. *)
val mem : item -> t -> bool

(** Insert; array sections with the same base are unioned. *)
val add : item -> t -> t

(** Remove as must-information: arrays lose only provably covered
    sections. *)
val remove : item -> t -> t

val remove_exact : item -> t -> t
val union : t -> t -> t

(** [diff a b] removes [b] from [a] with must-semantics. *)
val diff : t -> t -> t

val fold : (item -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (item -> unit) -> t -> unit
val filter : (item -> bool) -> t -> t
val equal : t -> t -> bool

(** All items referring to collection [c]. *)
val about_collection : string -> t -> t

(** Rename every item's base variable (formal-to-actual mapping in the
    interprocedural analysis). *)
val rename : (string -> string) -> t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
