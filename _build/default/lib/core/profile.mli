(** Workload profiling.

    The cost model needs, per candidate filter, the operations executed
    per packet, and per candidate boundary, the communication volume.
    Both are measured by executing the segments on sample packets with
    the instrumented interpreter — the paper's static operation-count
    model (§4.3) with measured trip counts, which keeps data-dependent
    selectivity (the isosurface cube test) honest. *)

open Lang

type t = {
  profile : Costmodel.profile;
  boundary_bytes : float array;
      (** bytes crossing each boundary per packet, indexed like
          {!Reqcomm.reqcomm_into} *)
  final_bytes : float;  (** packed size of the final reduction state *)
}

(** [run prog segments rc ~externs ~runtime_defs ~num_packets ()]
    profiles by executing the [samples] packets end-to-end.
    [num_packets] is the N of the cost formula.  [final_copies] is the
    number of transparent copies that will hold reduction partials: each
    ships its partial at end of stream, so the final-result volume is
    amortized as copies x bytes / N. *)
val run :
  Ast.program ->
  Boundary.segment list ->
  Reqcomm.t ->
  externs:(string * Interp.extern_fn) list ->
  runtime_defs:(string * int) list ->
  num_packets:int ->
  ?samples:int list ->
  ?weights:Opcount.weights ->
  ?final_copies:int ->
  unit ->
  t
