(* Human-readable rendering of the generated filters.

   The paper's compiler emits C++ filter code for DataCutter; ours builds
   closures, so this module renders what each generated filter does — the
   unpack loops (Figure 4's instance-wise and field-wise shapes), the
   code segments placed on the filter, the pack loops, and the
   end-of-stream reduction behaviour — for inspection and for golden
   tests. *)

open Lang

let scalar_ty_name = function
  | Packing.Sint -> "int"
  | Packing.Sfloat -> "float"
  | Packing.Sbool -> "bool"
  | Packing.Sstring -> "String"
  | Packing.Srange -> "Rectdomain<1>"

let emit_group buf ~dir c (g : Packing.group) =
  let verb = match dir with `In -> "read" | `Out -> "write" in
  match g.Packing.g_layout with
  | `Instance ->
      Buffer.add_string buf
        (Printf.sprintf "    for i in 0 .. count(%s) - 1:   // instance-wise\n" c);
      List.iter
        (fun fs ->
          Buffer.add_string buf
            (Printf.sprintf "      %s %s[i].%s : %s\n" verb c fs.Packing.fs_name
               (scalar_ty_name fs.Packing.fs_ty)))
        g.Packing.g_fields
  | `Fieldwise ->
      List.iter
        (fun fs ->
          Buffer.add_string buf
            (Printf.sprintf
               "    for i in 0 .. count(%s) - 1:   // field-wise column\n\
               \      %s %s[i].%s : %s\n"
               c verb c fs.Packing.fs_name
               (scalar_ty_name fs.Packing.fs_ty)))
        g.Packing.g_fields

let emit_layout buf ~dir (layout : Packing.layout) =
  if layout = [] then
    Buffer.add_string buf "    (nothing: end of per-packet stream)\n"
  else
    List.iter
      (fun entry ->
        match entry with
        | Packing.Escalar (v, st) ->
            Buffer.add_string buf
              (Printf.sprintf "    %s %s : %s\n"
                 (match dir with `In -> "read" | `Out -> "write")
                 v (scalar_ty_name st))
        | Packing.Eobj_field (v, _, f, st) ->
            Buffer.add_string buf
              (Printf.sprintf "    %s %s.%s : %s\n"
                 (match dir with `In -> "read" | `Out -> "write")
                 v f (scalar_ty_name st))
        | Packing.Eobj_any (v, _, f, ty) ->
            Buffer.add_string buf
              (Printf.sprintf "    %s %s.%s : %s (generic codec)\n"
                 (match dir with `In -> "read" | `Out -> "write")
                 v f (Ast.ty_to_string ty))
        | Packing.Earray (a, s, st) ->
            Buffer.add_string buf
              (Printf.sprintf "    %s %s%s : %s[]\n"
                 (match dir with `In -> "read" | `Out -> "write")
                 a (Section.to_string s) (scalar_ty_name st))
        | Packing.Ecoll (c, _, groups) ->
            Buffer.add_string buf
              (Printf.sprintf "    %s count(%s)\n"
                 (match dir with `In -> "read" | `Out -> "write")
                 c);
            List.iter (emit_group buf ~dir c) groups)
      layout

let emit_filter buf (plan : Codegen.plan) u =
  let module SS = Set.Make (String) in
  let segs = Codegen.segments_of_unit plan u in
  let role =
    if u = 1 then "source (reads the repository)"
    else if u = plan.Codegen.m then "sink (views the results)"
    else "inner"
  in
  Buffer.add_string buf (Printf.sprintf "filter C%d  -- %s\n" u role);
  let reduc = Codegen.reduc_updated plan u in
  if u > 1 then begin
    Buffer.add_string buf "  unpack input buffer:\n";
    emit_layout buf ~dir:`In plan.Codegen.layouts.(u - 1)
  end;
  if segs = [] then
    Buffer.add_string buf "  process: forward the buffer unchanged\n"
  else begin
    Buffer.add_string buf "  process unit-of-work (packet p):\n";
    List.iter
      (fun (s : Boundary.segment) ->
        Buffer.add_string buf
          (Printf.sprintf "    -- %s\n" s.Boundary.seg_label);
        List.iter
          (fun st ->
            let text = Pretty.stmt_to_string st in
            String.split_on_char '\n' text
            |> List.iter (fun line ->
                   Buffer.add_string buf ("    " ^ line ^ "\n")))
          s.Boundary.seg_stmts)
      segs
  end;
  if u < plan.Codegen.m then begin
    Buffer.add_string buf "  pack output buffer:\n";
    emit_layout buf ~dir:`Out plan.Codegen.layouts.(u)
  end;
  if not (SS.is_empty reduc) then
    Buffer.add_string buf
      (Printf.sprintf
         "  at end of stream: ship partial reduction state {%s} downstream\n"
         (String.concat ", " (SS.elements reduc)));
  if u = plan.Codegen.m then
    Buffer.add_string buf
      "  at end of stream: merge every incoming partial into the final result\n"

(* Render every generated filter of the plan. *)
let emit_plan (plan : Codegen.plan) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "-- generated pipeline: %d filters over %d segments --\n"
       plan.Codegen.m
       (Array.length plan.Codegen.segments));
  for u = 1 to plan.Codegen.m do
    if u > 1 then Buffer.add_string buf "\n";
    emit_filter buf plan u
  done;
  Buffer.contents buf
