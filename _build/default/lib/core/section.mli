(** Rectilinear sections with symbolic bounds (§4.2 of the paper).

    When the Gen/Cons analysis meets array accesses indexed by a function
    of a loop index, it replaces individual accesses by a rectilinear
    section derived from the loop bounds.  Bounds may be known only
    symbolically, so set operations are approximate in a direction that
    keeps the analysis sound: {!union} may over-approximate (growing
    may-information), {!subtract} removes only what is provably covered
    (removal needs must-information). *)

type bound =
  | Bconst of int
  | Bsym of string             (** symbolic value of a scalar variable *)
  | Bsym_off of string * int   (** symbol plus constant offset *)

type t =
  | Whole                      (** the entire array *)
  | Range of bound * bound     (** [lo, hi) *)

val bound_to_string : bound -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val bound_equal : bound -> bound -> bool
val equal : t -> t -> bool

(** Provable [a <= b]; [None] when the order cannot be decided. *)
val bound_le : bound -> bound -> bool option

(** Does [outer] provably contain [inner]? *)
val covers : outer:t -> inner:t -> bool

(** Upper bound of both arguments (may over-approximate to [Whole]). *)
val union : t -> t -> t

(** [subtract a b] is [None] when [b] provably covers [a]; otherwise [a]
    unchanged (conservative: nothing is partially removed). *)
val subtract : t -> t -> t option

(** Provably empty intersection. *)
val disjoint : t -> t -> bool
