(** Conservative alias information for the Gen/Cons analysis.

    Figure 2 assumes "(potentially conservative) alias information is
    available": Gen updates use must-alias information, Cons updates use
    may-alias information.  PipeLang aliases arise from reference
    assignments between object/collection variables; references stored
    into fields or collection elements "escape" and conservatively alias
    every other escaped reference.  The classes are flow-insensitive,
    hence sound as may-information. *)

open Lang

type t

val create : unit -> t

(** Union two variables' alias classes. *)
val union : t -> string -> string -> unit

(** Mark a variable as stored into a structure. *)
val mark_escaped : t -> string -> unit

(** Might the two names refer to the same object? *)
val may_alias : t -> string -> string -> bool

(** Is [v] definitely the only name for its object: never unioned with
    another name and never escaped?  Writes through [v] may then join
    Gen. *)
val unaliased : t -> string -> bool

(** Collect the alias classes of a statement list; [is_ref v] says
    whether [v] names a reference (class, list or array) variable. *)
val of_stmts : is_ref:(string -> bool) -> Ast.stmt list -> t
