(** Virtual microscope (§6.5): interactive browsing of digitized slides.

    A query selects a rectangular region of the slide at a subsampling
    factor; processing clips each data chunk to the region, subsamples,
    and the client assembles the output image.  The synthetic slide
    substitutes the paper's microscopy data; the slide store is
    row-indexed, so chunks outside the query are nearly free — which is
    what makes small queries hard to load-balance across data nodes. *)

open Lang
open Datacutter

type config = {
  image_w : int;
  image_h : int;
  num_packets : int;
  qx0 : int;  (** query region [qx0, qx1) x [qy0, qy1) *)
  qy0 : int;
  qx1 : int;
  qy1 : int;
  subsample : int;
  seed : int;
}

(** Output image dimensions for a query. *)
val out_dims : config -> int * int

val base : config

(** A 64x64 window: covers few chunks, poor load balance (Figure 11). *)
val small_query : config

(** Most of the slide at subsampling factor 4 (Figure 12). *)
val large_query : config

val tiny : config

(** The slide's pixel at (x, y). *)
val pixel : config -> int -> int -> float * float * float

val rows_per_packet : config -> int
val packet_rows : config -> int -> int * int

(** The rows of packet [p] that overlap the query region. *)
val query_rows : config -> int -> int * int

val read_chunk_extern : config -> string * Interp.extern_fn
val externs_sig : Typecheck.extern_sig list
val externs : config -> (string * Interp.extern_fn) list
val source_externs : string list
val runtime_defs : config -> (string * int) list

(** The PipeLang program. *)
val source : string

(** Extract the (r, g, b) planes of a final Img value. *)
val image_arrays : Value.t -> float array * float array * float array

(** Directly computed output image (native oracle). *)
val oracle : config -> float array * float array * float array

(** The Decomp-Manual pipeline: the data host strides over the chunk
    (instead of testing a conditional per pixel, the §6.5 difference),
    the middle stage forwards, the sink assembles. *)
val manual_topology :
  config ->
  widths:int array ->
  powers:float array ->
  bandwidths:float array ->
  ?latency:float ->
  unit ->
  Topology.t * (unit -> float array * float array * float array)
