(** k-nearest-neighbor search (§6.4): the paper's data-mining kernel.

    The dataset is a synthetic seeded 3-d point cloud (substituting the
    paper's 108 MB / 4.5M point file, scaled down); each packet holds a
    contiguous chunk of points.  Candidate sets are bounded max-heaps on
    distance.  Besides the PipeLang program, the module provides a
    hand-written DataCutter pipeline (Decomp-Manual) performing the same
    decomposition. *)

open Lang
open Datacutter

type config = {
  n_points : int;
  num_packets : int;
  k : int;
  query : float * float * float;
  seed : int;
}

val base_config : config

(** [base_config] with another k (the paper evaluates k = 3 and 200). *)
val with_k : int -> config

val tiny : config

(** The i-th dataset point. *)
val point : config -> int -> float * float * float

val per_packet : config -> int
val packet_range : config -> int -> int * int

val read_points_extern : config -> string * Interp.extern_fn
val externs_sig : Typecheck.extern_sig list
val externs : config -> (string * Interp.extern_fn) list
val source_externs : string list
val runtime_defs : config -> (string * int) list

(** The PipeLang program. *)
val source : string

(** The k nearest as a distance-sorted [(d2, x, y, z)] list (the order
    inside the KNN arrays is merge-tree dependent; sorting makes results
    comparable across runtimes). *)
val knn_result : Value.t -> (float * float * float * float) list

(** Exact k nearest by full scan (native oracle). *)
val oracle : config -> (float * float * float * float) list

(** Native candidate-set accumulator mirroring the PipeLang KNN class,
    with explicitly charged operation costs. *)
module Native_knn : sig
  type t

  val create : int -> t
  val insert : t -> float -> float -> float -> float -> unit
  val scan_point : t -> q:float * float * float -> float -> float -> float -> unit
  val take_ops : t -> float
  val pack : t -> Bytes.t
  val merge_packed : t -> Bytes.t -> unit
  val result : t -> (float * float * float * float) list
end

(** The Decomp-Manual pipeline: data hosts compute per-packet candidate
    sets, the compute stage merges them into per-copy partials, the sink
    merges the partials.  Returns the topology and a result accessor. *)
val manual_topology :
  config ->
  widths:int array ->
  powers:float array ->
  bandwidths:float array ->
  ?latency:float ->
  unit ->
  Topology.t * (unit -> (float * float * float * float) list)
