lib/apps/vmscope.ml: Array Ast Buffer Core Datacutter Filter Hashtbl Interp Lang List Opcount Printf Prng Topology Typecheck Value
