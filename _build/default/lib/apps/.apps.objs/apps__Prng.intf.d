lib/apps/prng.mli:
