lib/apps/harness.ml: Array Codegen Compile Core Costmodel Datacutter Interp Isosurface Knn Lang List Typecheck Vmscope
