lib/apps/isosurface.ml: Array Ast Hashtbl Interp Lang List Opcount Prng Typecheck Value
