lib/apps/kmeans.ml: Array Ast Float Hashtbl Interp Lang List Opcount Prng Typecheck Value
