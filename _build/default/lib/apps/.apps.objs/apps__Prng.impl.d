lib/apps/prng.ml: Int64
