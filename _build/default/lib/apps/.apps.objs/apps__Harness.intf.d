lib/apps/harness.mli: Compile Core Costmodel Interp Isosurface Knn Lang Packing Typecheck Value Vmscope
