lib/apps/isosurface.mli: Interp Lang Typecheck Value
