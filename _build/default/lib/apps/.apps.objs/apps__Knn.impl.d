lib/apps/knn.ml: Array Ast Buffer Bytes Core Datacutter Filter Hashtbl Interp Lang List Opcount Printf Prng Topology Typecheck Value
