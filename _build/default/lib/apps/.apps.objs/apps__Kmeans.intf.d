lib/apps/kmeans.mli: Interp Lang Typecheck Value
