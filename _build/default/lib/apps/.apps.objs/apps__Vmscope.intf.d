lib/apps/vmscope.mli: Datacutter Interp Lang Topology Typecheck Value
