lib/apps/knn.mli: Bytes Datacutter Interp Lang Topology Typecheck Value
