(** Deterministic splittable PRNG (splitmix64) used by every synthetic
    dataset generator.  Datasets are pure functions of (seed, index), so
    every filter copy — simulated, parallel, or the sequential reference —
    sees exactly the same data without shared state. *)

type t

val create : int -> t
val next : t -> int64
val next_float : t -> float

(** Stateless hash of (seed, index). *)
val hash2 : int -> int -> int64

(** Uniform float in [0, 1) from (seed, index). *)
val hash_float : int -> int -> float

(** Uniform int in [0, bound) from (seed, index).
    @raise Invalid_argument when [bound <= 0]. *)
val hash_int : int -> int -> int -> int
