(* Deterministic splittable PRNG (splitmix64) used by every synthetic
   dataset generator.  Datasets are functions of (seed, index), so every
   filter copy — simulated, parallel, or the sequential reference — sees
   exactly the same data without shared state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

(* Stateless hash of (seed, i): the workhorse for data generation. *)
let hash2 seed i =
  mix (Int64.add (Int64.mul (Int64.of_int seed) golden) (Int64.of_int (i * 2 + 1)))

(* Uniform float in [0, 1). *)
let float_of_bits bits =
  let mantissa = Int64.to_float (Int64.shift_right_logical bits 11) in
  mantissa /. 9007199254740992.0 (* 2^53 *)

let next_float t = float_of_bits (next t)

let hash_float seed i = float_of_bits (hash2 seed i)

(* Uniform int in [0, bound). *)
let hash_int seed i bound =
  if bound <= 0 then invalid_arg "Prng.hash_int: bound <= 0";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (hash2 seed i) 1) (Int64.of_int bound))
