(* k-means clustering: a fifth application beyond the paper's four.

   §2.1 argues the generalized-reduction structure covers data-mining
   algorithms including clustering; this module demonstrates it.  One
   pipelined pass implements one k-means iteration: the data host assigns
   each point to its nearest centroid and accumulates per-centroid
   partial sums (a reduction), the view node divides sums by counts.
   The driver ([iterate]) re-runs the same compiled pipeline with updated
   centroids until convergence — the centroid positions are run-time
   configuration read through an extern, so no recompilation is needed
   between rounds. *)

open Lang
module V = Value

type config = {
  n_points : int;
  num_packets : int;
  k : int;
  seed : int;
}

let base = { n_points = 12000; num_packets = 12; k = 4; seed = 77 }
let tiny = { n_points = 240; num_packets = 4; k = 3; seed = 9 }

(* Clustered synthetic points: k true centers on a circle, points spread
   around them. *)
let true_center cfg j =
  let a = 2.0 *. Float.pi *. float_of_int j /. float_of_int cfg.k in
  (0.5 +. (0.3 *. cos a), 0.5 +. (0.3 *. sin a))

let point cfg i =
  let j = Prng.hash_int cfg.seed (3 * i) cfg.k in
  let cx, cy = true_center cfg j in
  let dx = (Prng.hash_float cfg.seed ((3 * i) + 1) -. 0.5) *. 0.16 in
  let dy = (Prng.hash_float cfg.seed ((3 * i) + 2) -. 0.5) *. 0.16 in
  (cx +. dx, cy +. dy)

let per_packet cfg = (cfg.n_points + cfg.num_packets - 1) / cfg.num_packets

let packet_range cfg p =
  let per = per_packet cfg in
  (p * per, min cfg.n_points ((p + 1) * per))

(* The centroid table shared with the externs: mutable between rounds. *)
type centroids = { cx : float array; cy : float array }

let initial_centroids cfg =
  (* spread starting guesses along the diagonal *)
  {
    cx = Array.init cfg.k (fun j -> 0.2 +. (0.6 *. float_of_int j /. float_of_int (max 1 (cfg.k - 1))));
    cy = Array.init cfg.k (fun j -> 0.2 +. (0.6 *. float_of_int j /. float_of_int (max 1 (cfg.k - 1))));
  }

let externs cfg (cents : centroids) : (string * Interp.extern_fn) list =
  [
    ( "read_pts",
      fun ctx args ->
        let p = V.as_int (List.hd args) in
        let lo, hi = packet_range cfg p in
        let vec = V.Vec.create () in
        for i = lo to hi - 1 do
          let x, y = point cfg i in
          let fields = Hashtbl.create 2 in
          Hashtbl.replace fields "x" (V.Vfloat x);
          Hashtbl.replace fields "y" (V.Vfloat y);
          V.Vec.push vec (V.Vobject { V.ocls = "Pt"; V.ofields = fields })
        done;
        ctx.Interp.counter.Opcount.mem_ops <-
          ctx.Interp.counter.Opcount.mem_ops + (16 * (hi - lo));
        V.Vlist vec );
    ( "centroid_x",
      fun _ctx args -> V.Vfloat cents.cx.(V.as_int (List.hd args)) );
    ( "centroid_y",
      fun _ctx args -> V.Vfloat cents.cy.(V.as_int (List.hd args)) );
  ]

let externs_sig =
  [
    Typecheck.
      {
        ex_name = "read_pts";
        ex_params = [ Ast.Tint ];
        ex_ret = Ast.Tlist (Ast.Tclass "Pt");
      };
    Typecheck.{ ex_name = "centroid_x"; ex_params = [ Ast.Tint ]; ex_ret = Ast.Tfloat };
    Typecheck.{ ex_name = "centroid_y"; ex_params = [ Ast.Tint ]; ex_ret = Ast.Tfloat };
  ]

let source_externs = [ "read_pts" ]
let runtime_defs cfg = [ ("k", cfg.k) ]

let source =
  {|
class Pt {
  float x;
  float y;
}

class Sums implements Reducinterface {
  int k;
  float[] sx;
  float[] sy;
  int[] count;
  void merge(Sums other) {
    for (int i = 0; i < this.k; i = i + 1) {
      this.sx[i] = this.sx[i] + other.sx[i];
      this.sy[i] = this.sy[i] + other.sy[i];
      this.count[i] = this.count[i] + other.count[i];
    }
  }
}

Sums make_sums(int k) {
  Sums s = new Sums();
  s.k = k;
  s.sx = new float[k];
  s.sy = new float[k];
  s.count = new int[k];
  for (int i = 0; i < k; i = i + 1) {
    s.sx[i] = 0.0;
    s.sy[i] = 0.0;
    s.count[i] = 0;
  }
  return s;
}

float[] load_cx(int k) {
  float[] a = new float[k];
  for (int i = 0; i < k; i = i + 1) {
    a[i] = centroid_x(i);
  }
  return a;
}

float[] load_cy(int k) {
  float[] a = new float[k];
  for (int i = 0; i < k; i = i + 1) {
    a[i] = centroid_y(i);
  }
  return a;
}

Sums sums = make_sums(runtime_define k);

pipelined (p in [0 : runtime_define num_packets]) {
  List<Pt> pts = read_pts(p);
  float[] cx = load_cx(runtime_define k);
  float[] cy = load_cy(runtime_define k);
  Sums local = make_sums(runtime_define k);
  foreach (q in pts) {
    int best = 0;
    float bd = 1000000000.0;
    for (int i = 0; i < runtime_define k; i = i + 1) {
      float dx = q.x - cx[i];
      float dy = q.y - cy[i];
      float d = dx * dx + dy * dy;
      if (d < bd) {
        bd = d;
        best = i;
      }
    }
    local.sx[best] = local.sx[best] + q.x;
    local.sy[best] = local.sy[best] + q.y;
    local.count[best] = local.count[best] + 1;
  }
  sums.merge(local);
}
|}

(* Extract (sx, sy, count) from the final Sums value. *)
let sums_arrays = function
  | V.Vobject o ->
      ( V.as_array (V.field o "sx") |> Array.map V.as_float,
        V.as_array (V.field o "sy") |> Array.map V.as_float,
        V.as_array (V.field o "count") |> Array.map V.as_int )
  | v -> V.runtime_errorf "expected Sums, got %s" (V.type_name v)

(* New centroid positions from a round's sums (empty clusters keep their
   previous position). *)
let step_centroids (cents : centroids) (sx, sy, count) =
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        cents.cx.(i) <- sx.(i) /. float_of_int n;
        cents.cy.(i) <- sy.(i) /. float_of_int n
      end)
    count

(* Native single-round oracle against the same centroid table. *)
let oracle cfg (cents : centroids) =
  let sx = Array.make cfg.k 0.0
  and sy = Array.make cfg.k 0.0
  and count = Array.make cfg.k 0 in
  for i = 0 to cfg.n_points - 1 do
    let x, y = point cfg i in
    let best = ref 0 and bd = ref infinity in
    for j = 0 to cfg.k - 1 do
      let dx = x -. cents.cx.(j) and dy = y -. cents.cy.(j) in
      let d = (dx *. dx) +. (dy *. dy) in
      if d < !bd then begin
        bd := d;
        best := j
      end
    done;
    sx.(!best) <- sx.(!best) +. x;
    sy.(!best) <- sy.(!best) +. y;
    count.(!best) <- count.(!best) + 1
  done;
  (sx, sy, count)

(* Run [rounds] k-means iterations through a compiled pipeline executor:
   [run_round] executes one pipelined pass and returns the merged Sums
   value.  Returns the final centroid table and the movement of the last
   round. *)
let iterate cfg (cents : centroids) ~rounds ~run_round =
  let movement = ref infinity in
  for _ = 1 to rounds do
    let sums = run_round () in
    let prev = (Array.copy cents.cx, Array.copy cents.cy) in
    step_centroids cents (sums_arrays sums);
    let px, py = prev in
    movement :=
      Array.to_list (Array.init cfg.k (fun i ->
           let dx = cents.cx.(i) -. px.(i) and dy = cents.cy.(i) -. py.(i) in
           sqrt ((dx *. dx) +. (dy *. dy))))
      |> List.fold_left max 0.0
  done;
  !movement
