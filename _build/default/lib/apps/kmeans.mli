(** k-means clustering: a fifth application beyond the paper's four,
    demonstrating §2.1's claim that the generalized-reduction structure
    covers clustering.  One pipelined pass is one k-means iteration; the
    driver re-runs the same compiled pipeline with updated centroids
    (run-time configuration read through an extern) until convergence. *)

open Lang

type config = {
  n_points : int;
  num_packets : int;
  k : int;
  seed : int;
}

val base : config
val tiny : config

(** The j-th true cluster center of the synthetic data. *)
val true_center : config -> int -> float * float

val point : config -> int -> float * float
val per_packet : config -> int
val packet_range : config -> int -> int * int

(** The centroid table shared with the externs, mutated between rounds. *)
type centroids = { cx : float array; cy : float array }

val initial_centroids : config -> centroids

val externs : config -> centroids -> (string * Interp.extern_fn) list
val externs_sig : Typecheck.extern_sig list
val source_externs : string list
val runtime_defs : config -> (string * int) list

(** The PipeLang program (one iteration per run). *)
val source : string

(** Extract (sx, sy, count) from a final Sums value. *)
val sums_arrays : Value.t -> float array * float array * int array

(** Move centroids to their cluster means (empty clusters stay put). *)
val step_centroids : centroids -> float array * float array * int array -> unit

(** Native single-round oracle against the same centroid table. *)
val oracle : config -> centroids -> float array * float array * int array

(** Run [rounds] iterations, invoking [run_round] for each pipelined pass
    and updating [cents] in place; returns the last round's maximum
    centroid movement. *)
val iterate :
  config -> centroids -> rounds:int -> run_round:(unit -> Value.t) -> float
