(* Placement of logical filters onto a pipeline of computing units.

   A topology is a list of stages; stage 0 holds the data source(s), the
   last stage hosts the sink.  Each stage has a width (number of
   transparent copies, one per node of that stage) and a per-node
   computing power; consecutive stages are joined by links with a
   bandwidth and a per-buffer latency.

   The paper's experimental configurations map directly:
     1-1-1 -> widths [1; 1; 1]
     2-2-1 -> widths [2; 2; 1]
     4-4-1 -> widths [4; 4; 1]                                          *)

type role =
  | Source of (int -> Filter.source)   (* copy index -> source instance *)
  | Inner of (int -> Filter.t)
  | Sink of (int -> Filter.t)

type stage = {
  stage_name : string;
  width : int;
  power : float;          (* weighted ops/second of each node *)
  role : role;
}

type link = {
  bandwidth : float;      (* bytes/second *)
  latency : float;        (* seconds per buffer *)
}

type t = {
  stages : stage list;
  links : link list;      (* length = stages - 1 *)
}

let create ~stages ~links =
  if List.length links <> List.length stages - 1 then
    invalid_arg "Topology.create: need one link fewer than stages";
  List.iter
    (fun s ->
      if s.width < 1 then invalid_arg "Topology.create: stage width < 1";
      if s.power <= 0.0 then invalid_arg "Topology.create: stage power <= 0")
    stages;
  (match stages with
  | [] -> invalid_arg "Topology.create: empty pipeline"
  | first :: _ -> (
      match first.role with
      | Source _ -> ()
      | _ -> invalid_arg "Topology.create: first stage must be a Source"));
  (match List.rev stages with
  | last :: _ :: _ -> (
      match last.role with
      | Sink _ -> ()
      | _ -> invalid_arg "Topology.create: last stage must be a Sink")
  | _ -> ());
  { stages; links }

let stage_count t = List.length t.stages
let widths t = List.map (fun s -> s.width) t.stages
