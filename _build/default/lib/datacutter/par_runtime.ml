(* Real parallel execution of a filter pipeline on OCaml 5 domains.

   Each filter copy runs on its own domain; streams are bounded blocking
   queues (backpressure like DataCutter's fixed buffer pool).  The item
   protocol is the same as [Sim_runtime]'s: Data buffers round-robin
   across the downstream copies, Final buffers carry per-copy partial
   results, Markers are broadcast and counted. *)

type item =
  | Data of Filter.buffer
  | Final of Filter.buffer
  | Marker

module Bqueue = struct
  type 'a t = {
    items : 'a Queue.t;
    mutex : Mutex.t;
    not_empty : Condition.t;
    not_full : Condition.t;
    capacity : int;
  }

  let create capacity =
    {
      items = Queue.create ();
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      capacity;
    }

  let push q x =
    Mutex.lock q.mutex;
    while Queue.length q.items >= q.capacity do
      Condition.wait q.not_full q.mutex
    done;
    Queue.push x q.items;
    Condition.signal q.not_empty;
    Mutex.unlock q.mutex

  let pop q =
    Mutex.lock q.mutex;
    while Queue.is_empty q.items do
      Condition.wait q.not_empty q.mutex
    done;
    let x = Queue.pop q.items in
    Condition.signal q.not_full;
    Mutex.unlock q.mutex;
    x
end

type metrics = {
  wall_time : float;             (* end-to-end seconds *)
  stage_busy : float array array; (* [stage].[copy] busy seconds *)
  stage_items : int array array;
}

let run ?(queue_capacity = 64) (topo : Topology.t) : metrics =
  let stages = Array.of_list topo.Topology.stages in
  let n_stages = Array.length stages in
  (* input queue per copy of stages 1.. *)
  let queues =
    Array.init n_stages (fun s ->
        if s = 0 then [||]
        else
          Array.init stages.(s).Topology.width (fun _ ->
              (Bqueue.create queue_capacity : item Bqueue.t)))
  in
  let busy = Array.map (fun st -> Array.make st.Topology.width 0.0) stages in
  let items_done = Array.map (fun st -> Array.make st.Topology.width 0) stages in
  let now () = Unix.gettimeofday () in

  let send_rr rr s it =
    let dst = queues.(s + 1) in
    let k = !rr mod Array.length dst in
    incr rr;
    Bqueue.push dst.(k) it
  in
  let broadcast s it =
    Array.iter (fun q -> Bqueue.push q it) queues.(s + 1)
  in

  let copy_body s k () =
    let st = stages.(s) in
    let rr = ref k in
    let charge f =
      let t0 = now () in
      let r = f () in
      busy.(s).(k) <- busy.(s).(k) +. (now () -. t0);
      r
    in
    match st.Topology.role with
    | Topology.Source mk ->
        let src = mk k in
        let rec loop () =
          match charge (fun () -> src.Filter.next ()) with
          | Some (b, _) ->
              items_done.(s).(k) <- items_done.(s).(k) + 1;
              send_rr rr s (Data b);
              loop ()
          | None ->
              let out, _ = charge (fun () -> src.Filter.src_finalize ()) in
              (match out with Some b -> send_rr rr s (Final b) | None -> ());
              broadcast s Marker
        in
        loop ()
    | Topology.Inner mk | Topology.Sink mk ->
        let f = mk k in
        ignore (charge (fun () -> f.Filter.init ()));
        let q = queues.(s).(k) in
        let upstream = stages.(s - 1).Topology.width in
        let markers = ref 0 in
        let is_last = s = n_stages - 1 in
        let forward it = if not is_last then send_rr rr s it in
        let rec loop () =
          match Bqueue.pop q with
          | Data b ->
              let out, _ = charge (fun () -> f.Filter.process b) in
              items_done.(s).(k) <- items_done.(s).(k) + 1;
              (match out with Some b -> forward (Data b) | None -> ());
              loop ()
          | Final b ->
              let out, _ = charge (fun () -> f.Filter.on_eos (Some b)) in
              (match out with Some b -> forward (Final b) | None -> ());
              loop ()
          | Marker ->
              incr markers;
              if !markers = upstream then begin
                let out, _ = charge (fun () -> f.Filter.finalize ()) in
                (match out with Some b -> forward (Final b) | None -> ());
                if not is_last then broadcast s Marker
              end
              else loop ()
        in
        loop ()
  in

  let t0 = now () in
  let domains =
    List.concat
      (List.init n_stages (fun s ->
           List.init stages.(s).Topology.width (fun k ->
               Domain.spawn (copy_body s k))))
  in
  List.iter Domain.join domains;
  let wall_time = now () -. t0 in
  { wall_time; stage_busy = busy; stage_items = items_done }
