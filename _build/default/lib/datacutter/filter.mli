(** The filter-stream programming model of DataCutter (§2.2).

    An application is a set of filters connected by streams; all data
    transfer happens through buffers, and filter operation follows the
    init / process / finalize cycle.  A filter has one input and one
    output stream (the source reads from local storage, the sink only
    views results).  Transparent copies of a logical filter receive
    buffers round-robin; end-of-stream markers can carry a payload (a
    per-copy partial reduction) that downstream filters absorb or
    forward. *)

type buffer = {
  packet : int;  (** unit-of-work id; -1 for end-of-stream payloads *)
  data : Bytes.t;
}

val make_buffer : packet:int -> Bytes.t -> buffer
val buffer_size : buffer -> int

(** Work reported to the runtime, in abstract weighted operations: the
    simulated runtime divides by the hosting unit's power, the parallel
    runtime measures real time instead. *)
type cost = float

(** A filter copy; implementations keep per-copy state in their
    closures. *)
type t = {
  name : string;
  init : unit -> cost;
  process : buffer -> buffer option * cost;
      (** handle one data buffer, optionally emitting downstream *)
  on_eos : buffer option -> buffer option * cost;
      (** absorb (or forward) one upstream copy's end-of-stream payload *)
  finalize : unit -> buffer option * cost;
      (** all upstream copies finished: flush own state downstream *)
}

(** A data source: the filter at the head of the pipeline.  [next]
    yields successive unit-of-work buffers with their production cost;
    [src_finalize] flushes reduction state the compiler may have placed
    on the data host. *)
type source = {
  src_name : string;
  next : unit -> (buffer * cost) option;
  src_finalize : unit -> buffer option * cost;
}

(** A filter that forwards everything untouched. *)
val pass_through : string -> t

(** A sink recording everything it receives; the second component
    returns the buffers in arrival order. *)
val collecting_sink : string -> t * (unit -> buffer list)
