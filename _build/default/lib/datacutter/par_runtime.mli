(** Real parallel execution of a filter pipeline on OCaml 5 domains.

    Each filter copy runs on its own domain; streams are bounded blocking
    queues (backpressure like DataCutter's fixed buffer pool).  The item
    protocol matches {!Sim_runtime}: data buffers round-robin across the
    downstream copies, end-of-stream payloads are absorbed or forwarded,
    markers are broadcast and counted. *)

type metrics = {
  wall_time : float;               (** end-to-end seconds *)
  stage_busy : float array array;  (** busy seconds per stage, per copy *)
  stage_items : int array array;
}

(** Run the pipeline to completion, one domain per filter copy.
    [queue_capacity] bounds each stream's in-flight buffers. *)
val run : ?queue_capacity:int -> Topology.t -> metrics
