(** Placement of logical filters onto a pipeline of computing units.

    A topology is a list of stages: stage 0 holds the data source(s),
    the last stage the sink.  Each stage has a width (transparent
    copies, one per node) and a per-node power; consecutive stages are
    joined by links.  The paper's configurations map directly: 1-1-1,
    2-2-1 and 4-4-1 are the stage widths. *)

type role =
  | Source of (int -> Filter.source)  (** copy index -> instance *)
  | Inner of (int -> Filter.t)
  | Sink of (int -> Filter.t)

type stage = {
  stage_name : string;
  width : int;
  power : float;  (** weighted ops/second of each node of the stage *)
  role : role;
}

type link = {
  bandwidth : float;  (** bytes/second *)
  latency : float;    (** seconds per buffer *)
}

type t = { stages : stage list; links : link list }

(** @raise Invalid_argument unless there is one link fewer than stages,
    every width and power is positive, the first stage is a [Source] and
    the last a [Sink]. *)
val create : stages:stage list -> links:link list -> t

val stage_count : t -> int
val widths : t -> int list
