lib/datacutter/topology.ml: Filter List
