lib/datacutter/sim_runtime.mli: Format Topology
