lib/datacutter/par_runtime.mli: Topology
