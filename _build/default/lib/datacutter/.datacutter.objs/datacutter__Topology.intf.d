lib/datacutter/topology.mli: Filter
