lib/datacutter/filter.ml: Bytes List
