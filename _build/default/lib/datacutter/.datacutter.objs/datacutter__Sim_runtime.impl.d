lib/datacutter/sim_runtime.ml: Array Filter Fmt Queue Topology
