lib/datacutter/filter.mli: Bytes
