lib/datacutter/par_runtime.ml: Array Condition Domain Filter List Mutex Queue Topology Unix
