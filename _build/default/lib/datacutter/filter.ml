(* The filter-stream programming model of DataCutter (§2.2).

   An application is a set of filters connected by streams.  All data
   transfer happens through fixed buffers; filter operation follows the
   init / process / finalize cycle.  A filter has one input stream and one
   output stream (the source reads from local storage, the sink only
   views results).

   Transparent copies: a logical filter may be instantiated several times;
   the runtime distributes stream buffers over the copies (round-robin)
   and keeps the illusion of a single logical stream.  End-of-stream
   markers can carry a payload (a per-copy partial reduction result) that
   downstream filters absorb or forward. *)

type buffer = {
  packet : int;      (* unit-of-work id; -1 for end-of-stream payloads *)
  data : Bytes.t;
}

let make_buffer ~packet data = { packet; data }
let buffer_size b = Bytes.length b.data

(* Work a filter copy reports to the runtime, in abstract weighted
   operations; the simulated runtime divides by the hosting unit's power,
   the parallel runtime ignores it (real time is measured). *)
type cost = float

(* A filter copy.  Implementations capture their per-copy state in the
   closure environment. *)
type t = {
  name : string;
  init : unit -> cost;
  (* process one data buffer; return an optional output buffer *)
  process : buffer -> buffer option * cost;
  (* absorb (or forward) one upstream copy's end-of-stream payload *)
  on_eos : buffer option -> buffer option * cost;
  (* all upstream copies finished: flush own state downstream *)
  finalize : unit -> buffer option * cost;
}

(* A data source: the filter at the head of the pipeline, reading from
   the (local) data repository.  [next] yields successive unit-of-work
   buffers and their production cost. *)
type source = {
  src_name : string;
  next : unit -> (buffer * cost) option;
  (* sources may also hold per-copy reduction state when the compiler
     places a merge on the data host; flushed after the last packet *)
  src_finalize : unit -> buffer option * cost;
}

(* A no-op pass-through filter (useful as a default and in tests). *)
let pass_through name =
  {
    name;
    init = (fun () -> 0.0);
    process = (fun b -> (Some b, 0.0));
    on_eos = (fun payload -> (payload, 0.0));
    finalize = (fun () -> (None, 0.0));
  }

(* A sink that records everything it receives. *)
let collecting_sink name =
  let received = ref [] in
  let filter =
    {
      name;
      init = (fun () -> 0.0);
      process =
        (fun b ->
          received := b :: !received;
          (None, 0.0));
      on_eos =
        (fun payload ->
          (match payload with
          | Some b -> received := b :: !received
          | None -> ());
          (None, 0.0));
      finalize = (fun () -> (None, 0.0));
    }
  in
  (filter, fun () -> List.rev !received)
