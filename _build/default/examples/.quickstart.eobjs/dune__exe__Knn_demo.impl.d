examples/knn_demo.ml: Apps Array Boundary Compile Core Fmt List
