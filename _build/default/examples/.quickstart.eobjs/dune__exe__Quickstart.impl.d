examples/quickstart.ml: Apps Array Compile Core Costmodel Datacutter Fmt Hashtbl Lang List String
