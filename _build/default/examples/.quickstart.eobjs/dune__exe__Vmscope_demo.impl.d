examples/vmscope_demo.ml: Apps Array Buffer Compile Core Costmodel Fmt List String
