examples/isosurface_demo.ml: Apps Array Boundary Buffer Compile Core Costmodel Fmt List
