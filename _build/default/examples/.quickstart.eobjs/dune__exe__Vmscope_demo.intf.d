examples/vmscope_demo.mli:
