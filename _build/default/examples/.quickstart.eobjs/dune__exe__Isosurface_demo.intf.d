examples/isosurface_demo.mli:
