examples/knn_demo.mli:
