examples/kmeans_demo.ml: Apps Array Compile Core Costmodel Datacutter Fmt List
