examples/quickstart.mli:
