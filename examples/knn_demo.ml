(* k-nearest-neighbor demo: shows the compiler's environment-dependent
   decomposition (§4.4) and the Default-vs-Decomp gap of Figure 9.

   The same knn program is compiled against two different clusters — one
   with a fast interconnect, one with a slow one — and the chosen filter
   boundaries move: with cheap communication the compiler ships raw
   points; with expensive communication it computes the candidate set on
   the data host and ships only k records per packet.

     dune exec examples/knn_demo.exe                                     *)

open Core
module H = Apps.Harness

(* Unwrap a harness cell, rendering a runtime failure readably. *)
let cell = function
  | Ok v -> v
  | Error e -> Fmt.failwith "run failed: %a" Datacutter.Supervisor.pp_run_error e

let describe label (c : Compile.t) =
  Fmt.pr "%s@." label;
  List.iter
    (fun (s : Boundary.segment) ->
      Fmt.pr "  %a -> C%d@." Boundary.pp_segment s
        c.Compile.assignment.(s.Boundary.seg_index))
    c.Compile.segments;
  Fmt.pr "  predicted total: %.4fs@.@." c.Compile.predicted_total

let () =
  let cfg = Apps.Knn.with_k 8 in
  let app = H.knn_app cfg in
  let widths = [| 1; 1; 1 |] in

  let slow_net = { H.default_cluster with H.bandwidth = 2e5 } in
  let fast_net = { H.default_cluster with H.bandwidth = 5e7 } in

  let c_slow = H.compile ~cluster:slow_net ~widths app in
  let c_fast = H.compile ~cluster:fast_net ~widths app in
  describe "decomposition on a slow network (0.2 MB/s):" c_slow;
  describe "decomposition on a fast network (50 MB/s):" c_fast;

  (* run Default vs Decomp on the standard cluster, as in Figure 9 *)
  Fmt.pr "Figure-9 style comparison on the standard cluster (2-2-1):@.";
  let widths = [| 2; 2; 1 |] in
  let t_def, _, _, _ = cell (H.run_cell ~strategy:Compile.Default ~widths app) in
  let t_dec, _, results, _ = cell (H.run_cell ~strategy:Compile.Decomp ~widths app) in
  Fmt.pr "  Default: %.4fs   Decomp: %.4fs   (%.0f%% faster)@.@." t_def t_dec
    ((t_def -. t_dec) /. t_dec *. 100.0);

  (* and the answer itself *)
  let qx, qy, qz = cfg.Apps.Knn.query in
  Fmt.pr "%d nearest neighbours of (%.2f, %.2f, %.2f):@." cfg.Apps.Knn.k qx qy qz;
  List.iter
    (fun (d, x, y, z) ->
      Fmt.pr "  (%.4f, %.4f, %.4f) at distance %.5f@." x y z (sqrt d))
    (Apps.Knn.knn_result (List.assoc "result" results));
  let oracle = Apps.Knn.oracle cfg in
  let sim = Apps.Knn.knn_result (List.assoc "result" results) in
  Fmt.pr "matches exact scan: %b@."
    (List.for_all2 (fun (d1, _, _, _) (d2, _, _, _) -> abs_float (d1 -. d2) < 1e-12)
       sim oracle)
