(* Quickstart: compile and run a small PipeLang program from scratch.

   The program computes a histogram over a synthetic stream: the data
   host reads packets of samples, a filter stage discards out-of-range
   samples, and a reduction accumulates per-bucket counts.  The compiler
   chooses where to cut the pipeline; we run the result on the simulated
   cluster and on real domains, and check it against the sequential
   reference semantics.

     dune exec examples/quickstart.exe                                   *)

open Core
module V = Lang.Value

(* 1. The program, in the paper's dialect: a reduction class (associative
   and commutative merge), a foreach with a where clause (compaction),
   and a pipelined loop over packets. *)
let source =
  {|
class Sample {
  float value;
}

class Hist implements Reducinterface {
  int buckets;
  int[] count;
  void merge(Hist other) {
    for (int i = 0; i < this.buckets; i = i + 1) {
      this.count[i] = this.count[i] + other.count[i];
    }
  }
}

Hist make_hist(int buckets) {
  Hist h = new Hist();
  h.buckets = buckets;
  h.count = new int[buckets];
  for (int i = 0; i < buckets; i = i + 1) {
    h.count[i] = 0;
  }
  return h;
}

Hist histogram = make_hist(10);

pipelined (p in [0 : runtime_define num_packets]) {
  List<Sample> samples = read_samples(p);
  List<Sample> valid = new List<Sample>();
  foreach (s in samples where s.value >= 0.0 && s.value < 1.0) {
    valid.add(s);
  }
  Hist local = make_hist(10);
  foreach (s in valid) {
    int b = int_of_float(s.value * 10.0);
    local.count[b] = local.count[b] + 1;
  }
  histogram.merge(local);
}
|}

(* 2. The data source: a host function producing deterministic synthetic
   samples (a quarter of them out of range). *)
let read_samples : string * Lang.Interp.extern_fn =
  ( "read_samples",
    fun ctx args ->
      let p = V.as_int (List.hd args) in
      let vec = V.Vec.create () in
      for i = 0 to 999 do
        let u = Apps.Prng.hash_float 7 ((p * 1000) + i) in
        let value = (u *. 1.3) -. 0.15 (* some fall outside [0, 1) *) in
        let fields = Hashtbl.create 1 in
        Hashtbl.replace fields "value" (V.Vfloat value);
        V.Vec.push vec (V.Vobject { V.ocls = "Sample"; V.ofields = fields })
      done;
      ctx.Lang.Interp.counter.Lang.Opcount.mem_ops <-
        ctx.Lang.Interp.counter.Lang.Opcount.mem_ops + 8000;
      V.Vlist vec )

let externs_sig =
  [
    Lang.Typecheck.
      {
        ex_name = "read_samples";
        ex_params = [ Lang.Ast.Tint ];
        ex_ret = Lang.Ast.Tlist (Lang.Ast.Tclass "Sample");
      };
  ]

let () =
  (* 3. Describe the pipeline of computing units (data host, compute
     node, desktop) and compile. *)
  let pipeline =
    Costmodel.make_pipeline
      ~powers:[| 2e6; 2e6; 1e6 |]
      ~bandwidths:[| 5e5; 5e5 |]
      ~latency:0.0002 ()
  in
  let compiled =
    Compile.compile ~source ~externs_sig ~externs:[ read_samples ]
      ~pipeline ~num_packets:16 ~source_externs:[ "read_samples" ] ()
  in
  Fmt.pr "--- decomposition chosen by the compiler ---@.%a@."
    Compile.pp_summary compiled;

  (* 4. Run on the simulated cluster, 2 data + 2 compute nodes. *)
  let metrics, results = Compile.run_simulated compiled ~widths:[| 2; 2; 1 |] () in
  Fmt.pr "--- simulated 2-2-1 run ---@.%a@."
    Datacutter.Runtime.pp_metrics metrics;

  (* 5. Check against the sequential reference semantics. *)
  let reference = Compile.run_reference compiled in
  let counts v =
    match v with
    | V.Vobject o -> V.as_array (V.field o "count") |> Array.map V.as_int
    | _ -> assert false
  in
  let sim = counts (List.assoc "histogram" results) in
  let ref_ = counts (List.assoc "histogram" reference) in
  Fmt.pr "--- histogram ---@.";
  Array.iteri
    (fun i c ->
      Fmt.pr "  [%d.%d, %d.%d): %5d %s@." (i / 10) (i mod 10) ((i + 1) / 10)
        ((i + 1) mod 10) c
        (String.make (c / 100) '#'))
    sim;
  Fmt.pr "matches sequential reference: %b@." (sim = ref_);

  (* 6. The same filters also run on real domains. *)
  let par, par_results = Compile.run_parallel compiled ~widths:[| 2; 2; 1 |] () in
  Fmt.pr "--- parallel run on %d domains: %.3fs wall, matches: %b ---@." 5
    par.Datacutter.Engine.elapsed_s
    (counts (List.assoc "histogram" par_results) = ref_)
