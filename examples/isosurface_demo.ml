(* Isosurface rendering demo: compile the paper's z-buffer application,
   run the decomposed pipeline on the simulated cluster, and print the
   rendered isosurface as ASCII art — demonstrating that the distributed
   execution really computes the image (and agrees with the active-pixels
   algorithm).

     dune exec examples/isosurface_demo.exe                              *)

open Core
module H = Apps.Harness

(* Unwrap a harness cell, rendering a runtime failure readably. *)
let cell = function
  | Ok v -> v
  | Error e -> Fmt.failwith "run failed: %a" Datacutter.Supervisor.pp_run_error e

let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let render depth color w h =
  for y = h - 1 downto 0 do
    let line = Buffer.create w in
    for x = 0 to w - 1 do
      let i = (y * w) + x in
      if depth.(i) > 1e8 then Buffer.add_char line ' '
      else begin
        let c = int_of_float (color.(i) *. 9.0) in
        Buffer.add_char line shades.(max 0 (min 9 c))
      end
    done;
    print_endline (Buffer.contents line)
  done

let () =
  let cfg = Apps.Isosurface.small in
  Fmt.pr "compiling the z-buffer isosurface program (%dx%dx%d grid, %d packets)...@."
    cfg.Apps.Isosurface.grid_dim cfg.Apps.Isosurface.grid_dim
    cfg.Apps.Isosurface.grid_dim cfg.Apps.Isosurface.num_packets;
  let app = H.iso_app ~variant:`Zbuffer cfg in
  let widths = [| 2; 2; 1 |] in
  let t, bytes, results, c = cell (H.run_cell ~widths app) in
  Fmt.pr "decomposition: %a@." Costmodel.pp_assignment c.Compile.assignment;
  List.iter
    (fun (s : Boundary.segment) ->
      Fmt.pr "  %a on C%d@." Boundary.pp_segment s
        c.Compile.assignment.(s.Boundary.seg_index))
    c.Compile.segments;
  Fmt.pr "simulated 2-2-1 run: %.3fs, %.0f KB moved@.@." t (bytes /. 1024.);
  let depth, color =
    Apps.Isosurface.zbuffer_arrays (List.assoc "zfinal" results)
  in
  render depth color cfg.Apps.Isosurface.screen cfg.Apps.Isosurface.screen;
  (* cross-check with the active-pixels algorithm *)
  let app2 = H.iso_app ~variant:`Apix cfg in
  let _, _, results2, _ = cell (H.run_cell ~widths app2) in
  let pixels = Apps.Isosurface.apix_pixels (List.assoc "afinal" results2) in
  let agree =
    List.for_all
      (fun (i, d, s) ->
        abs_float (depth.(i) -. d) < 1e-9 && abs_float (color.(i) -. s) < 1e-9)
      pixels
  in
  Fmt.pr "@.active-pixels algorithm rendered %d pixels; agrees with z-buffer: %b@."
    (List.length pixels) agree
