(* k-means demo: iterate a compiled pipelined pass to convergence.

   One compilation, many rounds: the centroid positions are run-time
   configuration read by the filters through an extern, so each round
   just re-executes the same decomposed pipeline on the simulated
   cluster.  Shows the framework covers clustering (§2.1) and that
   reduction results can drive the next round.

     dune exec examples/kmeans_demo.exe                                  *)

open Core

let () =
  let cfg = Apps.Kmeans.base in
  let cents = Apps.Kmeans.initial_centroids cfg in
  let pipeline =
    Costmodel.make_pipeline
      ~powers:[| 2e6; 2e6; 1e6 |]
      ~bandwidths:[| 5e5; 5e5 |]
      ~latency:0.0002 ()
  in
  let compiled =
    Compile.compile ~source:Apps.Kmeans.source
      ~externs_sig:Apps.Kmeans.externs_sig
      ~externs:(Apps.Kmeans.externs cfg cents)
      ~runtime_defs:(Apps.Kmeans.runtime_defs cfg) ~pipeline
      ~num_packets:cfg.Apps.Kmeans.num_packets
      ~source_externs:Apps.Kmeans.source_externs ()
  in
  Fmt.pr "compiled one k-means iteration (%d points, k = %d):@.%a@."
    cfg.Apps.Kmeans.n_points cfg.Apps.Kmeans.k Compile.pp_summary compiled;
  let round = ref 0 in
  let run_round () =
    incr round;
    let metrics, results = Compile.run_simulated compiled ~widths:[| 2; 2; 1 |] () in
    Fmt.pr "round %d: %.4fs simulated;" !round
      metrics.Datacutter.Engine.elapsed_s;
    let v = List.assoc "sums" results in
    let _, _, counts = Apps.Kmeans.sums_arrays v in
    Fmt.pr " cluster sizes: %a@." Fmt.(array ~sep:(any ", ") int) counts;
    v
  in
  let movement = Apps.Kmeans.iterate cfg cents ~rounds:8 ~run_round in
  Fmt.pr "@.final centroids (max movement in last round %.5f):@." movement;
  Array.iteri
    (fun i x ->
      let tx, ty = Apps.Kmeans.true_center cfg (i mod cfg.Apps.Kmeans.k) in
      ignore tx;
      ignore ty;
      Fmt.pr "  c%d = (%.4f, %.4f)@." i x cents.Apps.Kmeans.cy.(i))
    cents.Apps.Kmeans.cx;
  Fmt.pr "true centers:@.";
  for j = 0 to cfg.Apps.Kmeans.k - 1 do
    let tx, ty = Apps.Kmeans.true_center cfg j in
    Fmt.pr "  t%d = (%.4f, %.4f)@." j tx ty
  done;
  (* every recovered centroid should be near some true center *)
  let ok =
    Array.for_all
      (fun i -> i)
      (Array.init cfg.Apps.Kmeans.k (fun i ->
           let x = cents.Apps.Kmeans.cx.(i) and y = cents.Apps.Kmeans.cy.(i) in
           let best = ref infinity in
           for j = 0 to cfg.Apps.Kmeans.k - 1 do
             let tx, ty = Apps.Kmeans.true_center cfg j in
             let d = sqrt (((x -. tx) ** 2.0) +. ((y -. ty) ** 2.0)) in
             if d < !best then best := d
           done;
           !best < 0.05))
  in
  Fmt.pr "@.all centroids within 0.05 of a true center: %b@." ok
