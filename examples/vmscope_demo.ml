(* Virtual-microscope demo: run two queries against the synthetic slide
   through the compiled pipeline and display the assembled output images,
   showing how the clip/subsample stage lands on the data host and only
   the subsampled pixels cross the network (§6.5).

     dune exec examples/vmscope_demo.exe                                 *)

open Core
module H = Apps.Harness

(* Unwrap a harness cell, rendering a runtime failure readably. *)
let cell = function
  | Ok v -> v
  | Error e -> Fmt.failwith "run failed: %a" Datacutter.Supervisor.pp_run_error e

let show_image r g b w h =
  (* luminance as ASCII *)
  let shades = " .:-=+*#%@" in
  for y = 0 to h - 1 do
    let line = Buffer.create w in
    for x = 0 to w - 1 do
      let i = (y * w) + x in
      if r.(i) < 0.0 then Buffer.add_char line '?'
      else begin
        let lum = (0.3 *. r.(i)) +. (0.6 *. g.(i)) +. (0.1 *. b.(i)) in
        let c = int_of_float (lum *. 9.99) in
        Buffer.add_char line shades.[max 0 (min 9 c)]
      end
    done;
    print_endline (Buffer.contents line)
  done

let run_query label cfg =
  let ow, oh = Apps.Vmscope.out_dims cfg in
  Fmt.pr "@.%s: region (%d,%d)-(%d,%d), subsample %d -> %dx%d output@." label
    cfg.Apps.Vmscope.qx0 cfg.Apps.Vmscope.qy0 cfg.Apps.Vmscope.qx1
    cfg.Apps.Vmscope.qy1 cfg.Apps.Vmscope.subsample ow oh;
  let app = H.vmscope_app cfg in
  let t, bytes, results, c = cell (H.run_cell ~widths:[| 2; 2; 1 |] app) in
  Fmt.pr "decomposition %a, %.3fs simulated, %.0f KB over the network@."
    Costmodel.pp_assignment c.Compile.assignment t (bytes /. 1024.);
  let r, g, b = Apps.Vmscope.image_arrays (List.assoc "view" results) in
  let orr, _, _ = Apps.Vmscope.oracle cfg in
  Fmt.pr "matches direct computation: %b@." (r = orr || Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) r orr);
  show_image r g b ow oh

let () =
  (* a moderate zoomed-out query so the ASCII image stays small *)
  let overview =
    {
      Apps.Vmscope.base with
      Apps.Vmscope.qx0 = 8;
      qy0 = 8;
      qx1 = 184;
      qy1 = 184;
      subsample = 4;
    }
  in
  let detail =
    {
      Apps.Vmscope.base with
      Apps.Vmscope.qx0 = 64;
      qy0 = 64;
      qx1 = 128;
      qy1 = 128;
      subsample = 2;
    }
  in
  run_query "overview query" overview;
  run_query "detail query" detail
