// A PipeLang program compiled from disk with the knn application's data
// source:
//
//   dune exec bin/cgppc.exe -- plan --app knn --file examples/radius_count.pl
//   dune exec bin/cgppc.exe -- run  --app knn --file examples/radius_count.pl -c 2-2-1
//
// It reuses read_points(p) (36000 synthetic 3-d points in 12 packets)
// but answers a different query: how many points fall within a fixed
// radius of the query point, and what is their centroid?  The count and
// coordinate sums form the reduction; the compiler places the distance
// test on the data host, so only three numbers per packet cross the
// network.

class Pt {
  float x;
  float y;
  float z;
}

class Ball implements Reducinterface {
  int n;
  float sx;
  float sy;
  float sz;
  void merge(Ball other) {
    this.n = this.n + other.n;
    this.sx = this.sx + other.sx;
    this.sy = this.sy + other.sy;
    this.sz = this.sz + other.sz;
  }
}

Ball result = new Ball();

pipelined (p in [0 : runtime_define num_packets]) {
  List<Pt> pts = read_points(p);
  float qx = float_of_int(runtime_define qx_milli) / 1000.0;
  float qy = float_of_int(runtime_define qy_milli) / 1000.0;
  float qz = float_of_int(runtime_define qz_milli) / 1000.0;
  Ball local = new Ball();
  foreach (q in pts) {
    float dx = q.x - qx;
    float dy = q.y - qy;
    float dz = q.z - qz;
    if (dx * dx + dy * dy + dz * dz < 0.01) {
      local.n += 1;
      local.sx += q.x;
      local.sy += q.y;
      local.sz += q.z;
    }
  }
  result.merge(local);
}
